"""repro.api — the stable, single-import surface of this library.

Everything a script, notebook, example, or the CLI needs lives here; the
submodule layout underneath (``repro.core``, ``repro.ilp``, ``repro.tam``,
…) is an implementation detail free to move between releases. Downstream
code should import from ``repro.api`` only — the repo's own examples are
held to that rule by lint rule C005.

The surface groups into:

- **data model** — :func:`load_soc`/:func:`save_soc`, the builtin systems
  (:func:`build_s1` …), :class:`Soc`, :class:`Core`,
  :class:`TamArchitecture`, :class:`DesignProblem`;
- **exact design flow** — :func:`design`, :func:`design_best_architecture`,
  the sweeps (:func:`sweep_widths`, :func:`power_budget_sweep`,
  :func:`distance_budget_sweep`), the duals (:func:`min_width`,
  :func:`bus_count_curve`), baselines and schedules;
- **runtime** — :func:`solve_cached`, :class:`SolutionCache`,
  :func:`use_cache`, :func:`run_parallel`, :class:`RunTelemetry`, and the
  racing portfolio :func:`run_portfolio` (:class:`PortfolioPolicy`,
  :class:`PortfolioReport`);
- **observability & resilience** — :func:`trace_solve` (span tracing with
  a text flame summary), :class:`MetricsRegistry` with :func:`get_metrics`
  / :func:`use_metrics`, and the anytime-solve controls
  :class:`SolvePolicy` / :class:`FallbackReport` with
  :func:`register_backend` for pluggable (or fault-injected) solvers;
- **experiments** — :func:`run_experiment`/:func:`run_all` with
  :class:`ExperimentConfig`;
- **reporting** — :func:`design_report`, :class:`Table`,
  :func:`format_table`, :func:`format_objective`;
- **static analysis** — :func:`lint_model`, :func:`lint_paths`;
- **errors** — :class:`ReproError` and its subclasses.

``sweep_widths``, ``min_width``, and ``bus_count_curve`` are the blessed
names for :func:`repro.core.width_sweep`,
:func:`repro.core.minimize_width`, and
:func:`repro.core.explore_bus_counts` respectively; the full alias map is
:data:`BLESSED_ALIASES`. The whole surface is enumerated by
:func:`facade_table` (export → defining module → since-PR → alias target),
rendered into the checked-in ``API.md`` manifest by
``python -m repro.api``, and pinned against drift by
``tests/test_api_facade.py``.
"""

from __future__ import annotations

from repro.analysis import (
    lint_model,
    lint_paths,
    lint_project,
    load_baseline,
    report_to_sarif,
)
from repro.core import (
    REQUEST_KINDS,
    DesignProblem,
    SolveRequest,
    TamDesign,
    resolve_soc,
    build_assignment_ilp,
    build_schedule,
    design,
    design_best_architecture,
    design_report,
    distance_budget_sweep,
    explore_bus_counts,
    lpt_assignment,
    local_search,
    minimize_width,
    pareto_front,
    power_budget_sweep,
    random_assignment,
    run_all_baselines,
    schedule_with_power_cap,
    simulated_annealing,
    width_sweep,
)
from repro.core.designer import ArchitectureSweepResult
from repro.core.dual import BusCountPoint, WidthMinimization
from repro.core.pareto import SweepPoint
from repro.experiments import (
    REGISTRY as EXPERIMENTS,
    ExperimentConfig,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.ilp import BranchAndBoundSolver, Model, quicksum
from repro.ilp.model import register_backend, unregister_backend
from repro.ilp.solution import Solution, SolveStats, Status
from repro.layout import Floorplan, anneal_place, bus_wirelength, grid_place, tam_wirelength
from repro.obs import (
    DEFAULT_CUT_POLICY,
    DEFAULT_PORTFOLIO_POLICY,
    DEFAULT_PRESOLVE_POLICY,
    CheckpointStore,
    CutPolicy,
    FallbackReport,
    MetricsRegistry,
    PortfolioPolicy,
    PresolvePolicy,
    SolvePolicy,
    SolverOptions,
    Span,
    Tracer,
    get_metrics,
    trace_solve,
    use_metrics,
)
from repro.power import budget_sweep_points, max_clique_power, power_groups
from repro.runtime import (
    DEFAULT_CACHE_DIR,
    EntrantRecord,
    PortfolioReport,
    RunTelemetry,
    SolutionCache,
    run_parallel,
    run_portfolio,
    solve_cached,
    use_cache,
)
from repro.soc import (
    Core,
    Soc,
    build_d695,
    build_p93791,
    build_s1,
    build_s2,
    build_s3,
    build_soc,
    build_t512505,
    corpus_names,
    corpus_soc,
    generate_synthetic_soc,
    load_soc,
    save_soc,
)
from repro.tam import (
    Assignment,
    TamArchitecture,
    ate_vector_memory,
    compare_architectures,
    distribution_allocation,
    exhaustive_optimal,
    make_timing_model,
    soc_test_data_volume,
    tam_utilization,
)
from repro.util.errors import (
    InfeasibleError,
    ReproError,
    SolverError,
    TransientSolverError,
    ValidationError,
)
from repro.util.tables import Table, format_objective, format_table
from repro.wrapper import pareto_widths
from repro.wrapper.overhead import soc_wrapper_overhead

#: Blessed aliases: the API names the facade documents for the three
#: sweep/dual drivers (the originals stay exported for continuity). This
#: map is the single source of truth — the assignments below, the manifest
#: rows, and the facade tests all derive from it.
BLESSED_ALIASES: dict[str, str] = {
    "sweep_widths": "width_sweep",
    "min_width": "minimize_width",
    "bus_count_curve": "explore_bus_counts",
}

sweep_widths = width_sweep
min_width = minimize_width
bus_count_curve = explore_bus_counts

__all__ = [
    # data model
    "Core",
    "Soc",
    "DesignProblem",
    "TamArchitecture",
    "Assignment",
    "Floorplan",
    "build_s1",
    "build_s2",
    "build_s3",
    "build_d695",
    "build_p93791",
    "build_t512505",
    "build_soc",
    "corpus_names",
    "corpus_soc",
    "generate_synthetic_soc",
    "load_soc",
    "save_soc",
    # unified request surface
    "SolveRequest",
    "REQUEST_KINDS",
    "resolve_soc",
    # facade manifest
    "BLESSED_ALIASES",
    "facade_table",
    "render_facade_manifest",
    # exact design flow + typed results
    "design",
    "design_best_architecture",
    "TamDesign",
    "ArchitectureSweepResult",
    "sweep_widths",
    "width_sweep",
    "SweepPoint",
    "power_budget_sweep",
    "distance_budget_sweep",
    "pareto_front",
    "min_width",
    "minimize_width",
    "WidthMinimization",
    "bus_count_curve",
    "explore_bus_counts",
    "BusCountPoint",
    "build_assignment_ilp",
    "build_schedule",
    "schedule_with_power_cap",
    "exhaustive_optimal",
    "make_timing_model",
    "lpt_assignment",
    "local_search",
    "random_assignment",
    "simulated_annealing",
    "run_all_baselines",
    # accounting / comparisons
    "ate_vector_memory",
    "compare_architectures",
    "distribution_allocation",
    "soc_test_data_volume",
    "tam_utilization",
    "soc_wrapper_overhead",
    "pareto_widths",
    "budget_sweep_points",
    "max_clique_power",
    "power_groups",
    "grid_place",
    "anneal_place",
    "tam_wirelength",
    "bus_wirelength",
    # MILP substrate
    "BranchAndBoundSolver",
    "Model",
    "quicksum",
    "Solution",
    "SolveStats",
    "Status",
    # runtime: caching, parallelism, telemetry
    "solve_cached",
    "SolutionCache",
    "use_cache",
    "run_parallel",
    "RunTelemetry",
    "DEFAULT_CACHE_DIR",
    # racing portfolio
    "run_portfolio",
    "PortfolioPolicy",
    "DEFAULT_PORTFOLIO_POLICY",
    "PortfolioReport",
    "EntrantRecord",
    # observability & resilience
    "trace_solve",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "get_metrics",
    "use_metrics",
    "SolvePolicy",
    "SolverOptions",
    "CutPolicy",
    "DEFAULT_CUT_POLICY",
    "PresolvePolicy",
    "DEFAULT_PRESOLVE_POLICY",
    "FallbackReport",
    "CheckpointStore",
    "register_backend",
    "unregister_backend",
    # experiments
    "run_experiment",
    "run_all",
    "ExperimentConfig",
    "ExperimentResult",
    "EXPERIMENTS",
    # reporting
    "design_report",
    "Table",
    "format_table",
    "format_objective",
    # static analysis
    "lint_model",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "report_to_sarif",
    # errors
    "ReproError",
    "InfeasibleError",
    "SolverError",
    "TransientSolverError",
    "ValidationError",
]

#: PR that introduced each export into the facade. The facade itself
#: shipped in PR 2, so that is the default; only later additions are
#: listed (see CHANGES.md for what each PR did).
_SINCE_PR: dict[str, int] = {
    # PR 3: observability & resilience
    "trace_solve": 3,
    "Tracer": 3,
    "Span": 3,
    "MetricsRegistry": 3,
    "get_metrics": 3,
    "use_metrics": 3,
    "SolvePolicy": 3,
    "FallbackReport": 3,
    "CheckpointStore": 3,
    "register_backend": 3,
    "unregister_backend": 3,
    "TransientSolverError": 3,
    # PR 4: solver-core fast path
    "BranchAndBoundSolver": 4,
    # PR 6: flow-aware lint engine
    "lint_project": 6,
    "report_to_sarif": 6,
    # PR 7: unified request surface + facade manifest
    "SolveRequest": 7,
    "REQUEST_KINDS": 7,
    "resolve_soc": 7,
    "BLESSED_ALIASES": 7,
    "facade_table": 7,
    "render_facade_manifest": 7,
    # PR 8: branch-and-cut + structured solver options
    "CutPolicy": 8,
    "SolverOptions": 8,
    "DEFAULT_CUT_POLICY": 8,
    # PR 9: root presolve + warm-started node LPs
    "PresolvePolicy": 9,
    "DEFAULT_PRESOLVE_POLICY": 9,
    # PR 10: scale corpus + racing portfolio
    "PortfolioPolicy": 10,
    "DEFAULT_PORTFOLIO_POLICY": 10,
    "PortfolioReport": 10,
    "EntrantRecord": 10,
    "run_portfolio": 10,
    "build_p93791": 10,
    "build_t512505": 10,
    "corpus_names": 10,
    "corpus_soc": 10,
}

#: Defining module for exports that are plain values (no ``__module__``).
_CONSTANT_MODULES: dict[str, str] = {
    "DEFAULT_CACHE_DIR": "repro.runtime.cache",
    "DEFAULT_CUT_POLICY": "repro.obs.policy",
    "DEFAULT_PORTFOLIO_POLICY": "repro.obs.policy",
    "DEFAULT_PRESOLVE_POLICY": "repro.obs.policy",
    "EXPERIMENTS": "repro.experiments",
    "REQUEST_KINDS": "repro.core.request",
    "BLESSED_ALIASES": "repro.api",
}


def facade_table() -> list[dict[str, object]]:
    """One row per facade export: name, defining module, since-PR, alias.

    ``module`` is where the object is actually defined (an alias therefore
    reports its target's home); ``alias_of`` names the canonical export for
    the blessed aliases and is ``None`` everywhere else. Rows are sorted by
    export name so the rendering is deterministic.
    """
    import sys

    this = sys.modules[__name__]
    rows: list[dict[str, object]] = []
    for name in sorted(__all__):
        obj = getattr(this, name)
        home = _CONSTANT_MODULES.get(name) or getattr(
            obj, "__module__", type(obj).__module__
        )
        if home == "__main__":  # running as `python -m repro.api`
            home = "repro.api"
        rows.append(
            {
                "name": name,
                "module": home,
                "since": _SINCE_PR.get(name, 2),
                "alias_of": BLESSED_ALIASES.get(name),
            }
        )
    return rows


def render_facade_manifest() -> str:
    """The checked-in ``API.md`` content, generated from :func:`facade_table`."""
    lines = [
        "# `repro.api` export manifest",
        "",
        "Every public name, where it is defined, and the PR that added it.",
        "Generated — regenerate with `PYTHONPATH=src python -m repro.api > API.md`;",
        "`tests/test_api_facade.py` fails when this file drifts from the live facade.",
        "",
        "| Export | Defined in | Since PR | Alias of |",
        "| --- | --- | --- | --- |",
    ]
    for row in facade_table():
        alias = f"`{row['alias_of']}`" if row["alias_of"] else ""
        lines.append(
            f"| `{row['name']}` | `{row['module']}` | {row['since']} | {alias} |"
        )
    return "\n".join(lines) + "\n"


if __name__ == "__main__":  # pragma: no cover - exercised via API.md check
    print(render_facade_manifest(), end="")
