"""Test wrapper design: how long a core's test takes at a given TAM width.

The TAM optimization consumes a per-core test-time curve ``T_i(w)``. This
subpackage derives it the way the core-test literature does: balance the
core's scan content over ``w`` wrapper chains and count shift cycles.

Public API:

- :func:`design_wrapper` — build a wrapper at a given width (chain packing);
- :func:`application_time` — cycles to apply the core's full test set at width w;
- :func:`application_time_curve` — T(w) over a width range;
- :func:`pareto_widths` — widths at which T(w) strictly improves.
"""

from repro.wrapper.design import (
    WrapperDesign,
    design_wrapper,
    internal_scan_chains,
    application_time,
    application_time_curve,
    pareto_widths,
)

__all__ = [
    "WrapperDesign",
    "design_wrapper",
    "internal_scan_chains",
    "application_time",
    "application_time_curve",
    "pareto_widths",
]
