"""Wrapper hardware overhead estimation.

Wrapping a core for modular test is not free: every functional terminal
gets a boundary cell, and the wrapper adds control (instruction register,
bypass, TAM port logic). This module estimates that cost in gate
equivalents (GE) so architecture studies can report the silicon price of
testability next to the testing time — the overhead axis the wrapper
standardization work (P1500-era) tracks.

Constants are typical standard-cell figures: a wrapper boundary cell is a
mux + flip-flop (~10 GE), the bypass register costs one flip-flop per TAM
wire (~6 GE each), and the control block (WIR, decode) is a small fixed
block. Absolute GE values are estimates; the *relative* overheads across
cores and widths are what the comparisons consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.util.errors import ValidationError

#: Gate equivalents per wrapper boundary cell (mux + scan flip-flop).
GE_PER_BOUNDARY_CELL = 10
#: Gate equivalents per bypass-register bit (one per TAM wire).
GE_PER_BYPASS_BIT = 6
#: Fixed control overhead (wrapper instruction register + decode).
GE_CONTROL = 120


@dataclass(frozen=True)
class WrapperOverhead:
    """Hardware cost of wrapping one core at one TAM width."""

    core_name: str
    width: int
    boundary_cells: int
    boundary_ge: int
    bypass_ge: int
    control_ge: int

    @property
    def total_ge(self) -> int:
        return self.boundary_ge + self.bypass_ge + self.control_ge

    def area_fraction(self, core: Core) -> float:
        """Overhead as a fraction of the core's own gate count."""
        return self.total_ge / core.num_gates if core.num_gates else float("inf")


def wrapper_overhead(core: Core, width: int | None = None) -> WrapperOverhead:
    """Estimate the wrapper cost of ``core`` at ``width`` TAM wires.

    ``width`` defaults to the core's native interface width. Boundary cells
    cover every functional input and output; scan terminals reuse the
    existing scan flip-flops and add no cells.
    """
    if width is None:
        width = core.test_width
    if width <= 0:
        raise ValidationError(f"width must be positive, got {width}")
    cells = core.num_inputs + core.num_outputs
    return WrapperOverhead(
        core_name=core.name,
        width=width,
        boundary_cells=cells,
        boundary_ge=cells * GE_PER_BOUNDARY_CELL,
        bypass_ge=width * GE_PER_BYPASS_BIT,
        control_ge=GE_CONTROL,
    )


@dataclass(frozen=True)
class SocOverhead:
    """Aggregate wrapper cost over a whole SOC."""

    per_core: tuple[WrapperOverhead, ...]
    total_ge: int
    soc_gates: int

    @property
    def area_fraction(self) -> float:
        return self.total_ge / self.soc_gates if self.soc_gates else float("inf")


def soc_wrapper_overhead(soc: Soc, widths: dict[str, int] | None = None) -> SocOverhead:
    """Wrapper cost of every core, at given per-core widths (or native)."""
    estimates = tuple(
        wrapper_overhead(core, (widths or {}).get(core.name)) for core in soc
    )
    return SocOverhead(
        per_core=estimates,
        total_ge=sum(e.total_ge for e in estimates),
        soc_gates=soc.total_gates,
    )
