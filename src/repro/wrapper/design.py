"""Wrapper chain construction and test application time.

Model (standard in the modular-test literature, e.g. Aerts & Marinissen,
ITC'98): a core tested at TAM width ``w`` gets ``w`` *wrapper chains*. Each
wrapper chain concatenates some of the core's internal scan chains plus some
functional input/output cells. Per test pattern the TAM shifts in the longest
input-side chain (``si`` cycles) while shifting out the previous response
(``so`` cycles), so the test application time for ``p`` patterns is::

    T(w) = (1 + max(si, so)) * p + min(si, so)

Internal scan chains are *fixed* once the core is delivered, so wrapper
design is a bin-packing of chain lengths over ``w`` bins — solved here with
the LPT (longest processing time first) heuristic the literature uses,
followed by greedy balancing of the 1-bit functional cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.soc.core import Core
from repro.util.errors import ValidationError

#: Default maximum internal scan chain length when a core doesn't specify
#: its chain structure. Cores are delivered with chains of roughly this
#: length (a typical DFT tool default of the era).
DEFAULT_CHAIN_LENGTH = 50


def internal_scan_chains(core: Core, max_length: int = DEFAULT_CHAIN_LENGTH) -> list[int]:
    """Return the core's internal scan chain lengths.

    A core delivered with an explicit chain structure (``core.scan_chains``,
    the ITC'02 style) uses it verbatim. Otherwise the flip-flops are split
    into ``ceil(FF / max_length)`` chains of nearly equal length (the
    balanced structure DFT insertion produces). Returns an empty list for
    combinational cores.
    """
    if core.scan_chains is not None:
        return list(core.scan_chains)
    if max_length <= 0:
        raise ValidationError(f"max_length must be positive, got {max_length}")
    total = core.num_flipflops
    if total == 0:
        return []
    count = math.ceil(total / max_length)
    base, extra = divmod(total, count)
    return [base + 1] * extra + [base] * (count - extra)


@dataclass(frozen=True)
class WrapperDesign:
    """A wrapper configuration for one core at one TAM width.

    ``in_chains``/``out_chains`` hold the total bit-length of each wrapper
    chain on the input (scan-in + stimulus) and output (scan-out + response)
    sides. ``si``/``so`` are the respective maxima — the per-pattern shift
    cycle counts.
    """

    core_name: str
    width: int
    in_chains: tuple[int, ...]
    out_chains: tuple[int, ...]

    @property
    def si(self) -> int:
        return max(self.in_chains) if self.in_chains else 0

    @property
    def so(self) -> int:
        return max(self.out_chains) if self.out_chains else 0

    def application_time(self, num_patterns: int) -> int:
        """Cycles to apply ``num_patterns`` patterns through this wrapper."""
        if num_patterns <= 0:
            raise ValidationError(f"num_patterns must be positive, got {num_patterns}")
        return (1 + max(self.si, self.so)) * num_patterns + min(self.si, self.so)


def _pack_lpt(items: list[int], bins: int) -> list[int]:
    """LPT bin packing: return per-bin totals after placing items descending."""
    totals = [0] * bins
    for item in sorted(items, reverse=True):
        totals[totals.index(min(totals))] += item
    return totals


def _spread_cells(totals: list[int], cells: int) -> list[int]:
    """Distribute ``cells`` 1-bit wrapper cells, always filling the shortest bin."""
    totals = list(totals)
    for _ in range(cells):
        totals[totals.index(min(totals))] += 1
    return totals


#: Structural-signature -> WrapperDesign memo. The packing costs O(width^2)
#: passes and the designer re-derives identical wrappers across every sweep
#: point; the key covers every core field the packing reads (plus the name,
#: which the returned record carries), so distinct cores cannot collide.
#: WrapperDesign is frozen, making the shared instances safe.
_WRAPPER_CACHE: dict[tuple, WrapperDesign] = {}


def design_wrapper(core: Core, width: int, chain_length: int = DEFAULT_CHAIN_LENGTH) -> WrapperDesign:
    """Build the wrapper for ``core`` at TAM width ``width``.

    Internal scan chains are packed over wrapper chains with LPT; functional
    input (output) cells are then spread one bit at a time onto the currently
    shortest input-side (output-side) chain. Because LPT is a heuristic, the
    design is built for every chain count up to ``width`` and the fastest is
    kept — a wrapper may always leave TAM wires unused, which also makes
    ``T(w)`` monotone non-increasing in ``w`` by construction.

    Results are memoized per structural signature: repeated calls for the
    same core shape and width return the same frozen design instantly.
    """
    if width <= 0:
        raise ValidationError(f"wrapper width must be positive, got {width}")
    key = (
        core.name,
        core.num_inputs,
        core.num_outputs,
        core.num_flipflops,
        core.num_patterns,
        core.scan_chains,
        width,
        chain_length,
    )
    cached = _WRAPPER_CACHE.get(key)
    if cached is not None:
        return cached
    chains = internal_scan_chains(core, max_length=chain_length)
    best: WrapperDesign | None = None
    best_time = math.inf
    for bins in range(1, width + 1):
        scan_totals = _pack_lpt(chains, bins)
        in_chains = _spread_cells(scan_totals, core.num_inputs)
        out_chains = _spread_cells(scan_totals, core.num_outputs)
        # Pad to the full width so the record reflects the physical interface.
        pad = (0,) * (width - bins)
        candidate = WrapperDesign(
            core.name, width, tuple(in_chains) + pad, tuple(out_chains) + pad
        )
        time = candidate.application_time(core.num_patterns)
        if time < best_time:
            best = candidate
            best_time = time
    assert best is not None
    _WRAPPER_CACHE[key] = best
    return best


def application_time(core: Core, width: int, chain_length: int = DEFAULT_CHAIN_LENGTH) -> int:
    """Test application time (cycles) of ``core`` at TAM width ``width``."""
    return design_wrapper(core, width, chain_length).application_time(core.num_patterns)


def application_time_curve(
    core: Core, max_width: int, chain_length: int = DEFAULT_CHAIN_LENGTH
) -> list[int]:
    """Return ``[T(1), T(2), ..., T(max_width)]`` for the core."""
    if max_width <= 0:
        raise ValidationError(f"max_width must be positive, got {max_width}")
    return [application_time(core, w, chain_length) for w in range(1, max_width + 1)]


def pareto_widths(core: Core, max_width: int, chain_length: int = DEFAULT_CHAIN_LENGTH) -> list[int]:
    """Widths in [1, max_width] where T(w) strictly improves on all narrower widths.

    Wrapper time is a staircase in width: beyond some width the longest
    internal chain dominates and extra wires are wasted. Assigning a core to
    a bus wider than its last Pareto width buys nothing — the classic
    motivation for heterogeneous bus widths.
    """
    curve = application_time_curve(core, max_width, chain_length)
    best = math.inf
    points = []
    for w, t in enumerate(curve, start=1):
        if t < best:
            best = t
            points.append(w)
    return points
