"""T4 — place-and-route-constrained design.

Places each SOC with the deterministic grid placer, then tightens the
distance budget ``delta`` through the floorplan's pairwise-distance change
points. Reports the optimal testing time, forbidden-pair count, and the
TAM wirelength of the optimal design under both the daisy-chain and MST
estimators.

Shape claims: tightening ``delta`` weakly increases the optimal testing
time; every returned design keeps forbidden pairs on distinct buses; a
sufficiently tight budget becomes infeasible (reported, not hidden).
"""

from __future__ import annotations

import math

from repro.core import DesignProblem, design
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.layout import grid_place, tam_wirelength
from repro.layout.constraints import distance_sweep_points
from repro.soc import build_s1, build_s2
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError
from repro.util.tables import Table, format_objective

DEFAULT_ARCHS = {"S1": TamArchitecture([16, 16, 16]), "S2": TamArchitecture([32, 16, 16])}


def run(socs=None, archs=None, timing: str = "serial", backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    result = ExperimentResult("T4", "Layout-constrained design: testing time vs distance budget")
    result.telemetry.jobs = config.jobs
    archs = archs or DEFAULT_ARCHS
    with config.activate():
        for soc in socs or (build_s1(), build_s2()):
            arch = archs.get(soc.name) or TamArchitecture.even_split(48, 3)
            floorplan = grid_place(soc)
            result.check(floorplan.is_legal(), f"{soc.name}: grid floorplan is legal")
            table = result.add_table(
                Table(
                    [
                        "delta (mm)",
                        "T* (cycles)",
                        "forbidden pairs",
                        "chain WL (wire-mm)",
                        "mst WL (wire-mm)",
                    ],
                    title=f"{soc.name} on {arch}: distance budget sweep ({timing} timing)",
                )
            )
            deltas = [floorplan.spread() * 1.01] + distance_sweep_points(floorplan)
            previous = 0.0
            went_infeasible = False
            for delta in deltas:
                problem = DesignProblem(
                    soc=soc,
                    arch=arch,
                    timing=timing,
                    floorplan=floorplan,
                    max_pair_distance=delta,
                )
                try:
                    designed = design(problem, backend=backend, **config.design_options())
                except InfeasibleError:
                    table.add_row(
                        [round(delta, 2), None, len(problem.forbidden_pairs), None, None]
                    )
                    went_infeasible = True
                    continue
                result.telemetry.record(designed.stats)
                result.telemetry.record_fallback(designed.fallback)
                result.check(
                    not went_infeasible,
                    f"{soc.name} delta={delta:.2f}: feasibility is monotone in delta",
                )
                result.check(
                    designed.makespan >= previous - 1e-6,
                    f"{soc.name} delta={delta:.2f}: time weakly increases as delta tightens",
                )
                previous = designed.makespan
                table.add_row(
                    [
                        round(delta, 2),
                        format_objective(designed.makespan),
                        len(problem.forbidden_pairs),
                        round(tam_wirelength(floorplan, designed.assignment, "chain"), 1),
                        round(tam_wirelength(floorplan, designed.assignment, "mst"), 1),
                    ]
                )
            result.check(went_infeasible or math.isfinite(previous),
                         f"{soc.name}: sweep covered the feasible range")
            result.note(
                f"{soc.name}: the loosest row is the unconstrained design; rows below "
                "trade testing time for shorter, more local TAM routes."
            )
    return result


if __name__ == "__main__":
    print(run().render())
