"""Shared result type for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import Table


@dataclass
class ExperimentResult:
    """Tables plus free-form notes for one table/figure reproduction.

    ``checks`` records the shape assertions that were verified while the
    experiment ran (they raise on failure, so their presence in a result
    certifies they passed).
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_chart(self, chart: str) -> None:
        """Attach an ASCII chart (rendered after the tables)."""
        self.charts.append(chart)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def check(self, condition: bool, description: str) -> None:
        """Assert a qualitative claim of the paper; record it when it holds."""
        if not condition:
            raise AssertionError(
                f"[{self.experiment_id}] shape assertion failed: {description}"
            )
        self.checks.append(description)

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for chart in self.charts:
            lines.append("")
            lines.append(chart)
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        if self.checks:
            lines.append("")
            lines.extend(f"check passed: {check}" for check in self.checks)
        return "\n".join(lines)
