"""Shared result and configuration types for experiment harnesses."""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs import SolvePolicy
from repro.runtime.cache import SolutionCache, use_cache
from repro.runtime.telemetry import RunTelemetry
from repro.util.tables import Table


@dataclass
class ExperimentConfig:
    """One configuration surface shared by every experiment harness.

    The T1–T5 / E1–E5 / F1–F4 ``run()`` functions all accept a ``config``;
    it carries the runtime knobs that used to be ad-hoc kwargs or
    module-level constants:

    ``jobs``
        Worker processes for the sweep fan-out (1 = deterministic serial).
    ``cache`` / ``cache_dir``
        The solve cache. Pass a ready :class:`SolutionCache`, or just a
        directory and one is built on it. None (default) disables caching.
    ``seed``
        Seed for the stochastic baselines/heuristics inside experiments.
    ``backend``
        Overrides the experiment's default exact backend when set.
    ``grid``
        Per-experiment grid overrides by parameter name (e.g.
        ``{"total_widths": [8, 16]}``); each harness consults the keys it
        understands via :meth:`override`.
    ``policy``
        A :class:`~repro.obs.SolvePolicy` capping every solve the harness
        issues (deadline / node budget / retry / fallback ladder). None
        (default) keeps the exact, uncapped path.
    """

    jobs: int = 1
    cache: SolutionCache | None = None
    cache_dir: str | None = None
    seed: int = 7
    backend: str | None = None
    grid: Mapping[str, Any] = field(default_factory=dict)
    policy: SolvePolicy | None = None

    @classmethod
    def coerce(cls, config: "ExperimentConfig | None") -> "ExperimentConfig":
        """Normalize an optional config argument (None -> defaults)."""
        if config is None:
            return cls()
        if not isinstance(config, cls):
            raise TypeError(f"config must be an ExperimentConfig, got {type(config).__name__}")
        return config

    def resolve_backend(self, default: str) -> str:
        return self.backend or default

    def resolve_cache(self) -> SolutionCache | None:
        """The configured cache, building one on ``cache_dir`` if needed."""
        if self.cache is None and self.cache_dir is not None:
            self.cache = SolutionCache(directory=self.cache_dir)
        return self.cache

    def activate(self):
        """Context manager installing the configured cache for a run body."""
        cache = self.resolve_cache()
        if cache is None:
            return contextlib.nullcontext()
        return use_cache(cache)

    def override(self, name: str, value):
        """Grid override for ``name``; falls back to ``value`` when unset."""
        return self.grid.get(name, value)

    def design_options(self) -> dict:
        """Solve-shaping kwargs to splat into ``design()``/sweep calls.

        Empty when no policy is configured, so harnesses can thread
        ``**config.design_options()`` unconditionally.
        """
        return {"policy": self.policy} if self.policy is not None else {}


@dataclass
class ExperimentResult:
    """Tables plus free-form notes for one table/figure reproduction.

    ``checks`` records the shape assertions that were verified while the
    experiment ran (they raise on failure, so their presence in a result
    certifies they passed). ``telemetry`` aggregates the solver work behind
    the result — solves issued, cache hits, B&B nodes, LP count, solver
    wall time.
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    telemetry: RunTelemetry = field(default_factory=RunTelemetry)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_chart(self, chart: str) -> None:
        """Attach an ASCII chart (rendered after the tables)."""
        self.charts.append(chart)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def check(self, condition: bool, description: str) -> None:
        """Assert a qualitative claim of the paper; record it when it holds."""
        if not condition:
            raise AssertionError(
                f"[{self.experiment_id}] shape assertion failed: {description}"
            )
        self.checks.append(description)

    def render(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        for chart in self.charts:
            lines.append("")
            lines.append(chart)
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        if self.checks:
            lines.append("")
            lines.extend(f"check passed: {check}" for check in self.checks)
        if self.telemetry.solves:
            lines.append("")
            lines.append(f"telemetry: {self.telemetry.render()}")
        return "\n".join(lines)
