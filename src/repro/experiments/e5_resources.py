"""E5 (extension) — test resource accounting of the optimal designs.

The successor literature judges TAM designs on tester resources, not just
makespan. For each SOC's optimal design this experiment reports test data
volume, ATE channel memory, TAM wire-cycle utilization (split into schedule
slack and width slack), and wrapper hardware overhead.

Shape claims: utilization lies in (0, 1]; ATE memory always covers the
active wire-cycles; the flexible model wastes no width (width slack 0);
wrapper overhead stays a small fraction of each SOC.
"""

from __future__ import annotations

from repro.core import DesignProblem, design
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_d695, build_s1, build_s2
from repro.tam import (
    TamArchitecture,
    ate_vector_memory,
    soc_test_data_volume,
    tam_utilization,
)
from repro.util.tables import Table, format_objective
from repro.wrapper.overhead import soc_wrapper_overhead

DEFAULT_ARCHS = {
    "S1": TamArchitecture([16, 16, 16]),
    "S2": TamArchitecture([32, 16, 16]),
    "d695": TamArchitecture([32, 16, 16]),
}


def run(socs=None, archs=None, backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    result = ExperimentResult("E5", "Extension: test resource accounting of optimal designs")
    result.telemetry.jobs = config.jobs
    archs = archs or DEFAULT_ARCHS
    table = result.add_table(
        Table(
            [
                "SOC",
                "timing",
                "T* (cycles)",
                "data volume (bits)",
                "ATE memory (bits)",
                "utilization (%)",
                "schedule slack",
                "width slack",
                "wrapper GE",
                "overhead (%)",
            ],
            title="Resource accounting per optimal design",
        )
    )
    fractions = {}
    with config.activate():
        for soc in socs or (build_s1(), build_s2(), build_d695()):
            arch = archs.get(soc.name) or TamArchitecture.even_split(48, 3)
            volume = soc_test_data_volume(soc)
            overhead = soc_wrapper_overhead(soc)
            fractions[soc.name] = overhead.area_fraction
            result.check(
                overhead.total_ge > 0,
                f"{soc.name}: wrapper overhead accounted ({overhead.area_fraction:.1%})",
            )
            for timing in ("serial", "flexible"):
                problem = DesignProblem(soc=soc, arch=arch, timing=timing)
                designed = design(problem, backend=backend, **config.design_options())
                result.telemetry.record(designed.stats)
                result.telemetry.record_fallback(designed.fallback)
                utilization = tam_utilization(soc, designed.assignment, problem.timing)
                memory = ate_vector_memory(designed.assignment, problem.timing)
                result.check(
                    0.0 < utilization.utilization <= 1.0 + 1e-9,
                    f"{soc.name}/{timing}: utilization within (0, 1]",
                )
                result.check(
                    memory >= utilization.active_wire_cycles - 1e-6,
                    f"{soc.name}/{timing}: ATE memory covers active wire-cycles",
                )
                if timing == "flexible":
                    result.check(
                        utilization.width_slack == 0.0,
                        f"{soc.name}: flexible wrappers waste no bus width",
                    )
                table.add_row(
                    [
                        soc.name,
                        timing,
                        format_objective(designed.makespan),
                        volume,
                        round(memory),
                        round(utilization.utilization * 100, 1),
                        round(utilization.schedule_slack),
                        round(utilization.width_slack),
                        overhead.total_ge,
                        round(overhead.area_fraction * 100, 1),
                    ]
                )
    result.note(
        "width slack (serial rows) is wire-cycles paid to cores narrower than "
        "their bus — the inefficiency the flexible wrapper model removes."
    )
    if {"S1", "S2"} <= fractions.keys():
        result.check(
            fractions["S2"] < fractions["S1"],
            "wrapper overhead fraction shrinks as cores grow (wrapping tiny "
            "ISCAS cores costs more than the cores themselves)",
        )
    return result


if __name__ == "__main__":
    print(run().render())
