"""F1 — testing time vs total TAM width (the width staircase).

For each bus count, sweep the total width budget and plot (as a table) the
optimal testing time with its best width distribution. Shape claims:

- more width never hurts at a fixed bus count;
- the curve saturates: beyond the knee the largest core's own test time
  pins the makespan (buses can't subdivide one core's test);
- at equal W, more buses can help or hurt depending on the serialization
  penalty — both directions appear, so the table reports them side by side.
"""

from __future__ import annotations

from repro.core import width_sweep
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_s1
from repro.util.tables import Table, format_objective

#: Default sweep stops at W=48: the NB=2 series saturates by W=40 and the
#: partition counts beyond 48 slow the exact sweep without adding shape.
DEFAULT_WIDTHS = list(range(8, 49, 8))


def run(soc=None, bus_counts=(2, 3), total_widths=None, timing: str = "serial",
        backend: str = "bnb", config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    soc = soc or build_s1()
    bus_counts = config.override("bus_counts", bus_counts)
    total_widths = config.override("total_widths", total_widths) or DEFAULT_WIDTHS
    result = ExperimentResult("F1", "Testing time vs total TAM width")
    result.telemetry.jobs = config.jobs
    table = result.add_table(
        Table(
            ["W"] + [f"NB={nb} T*" for nb in bus_counts] + [f"NB={nb} widths" for nb in bus_counts],
            title=f"{soc.name}: optimal testing time per total width ({timing} timing)",
        )
    )
    with config.activate():
        series = {}
        for num_buses in bus_counts:
            series[num_buses] = width_sweep(
                soc, num_buses, total_widths, timing=timing, backend=backend,
                jobs=config.jobs, policy=config.policy,
            )
    for points in series.values():
        for point in points:
            if point.telemetry is not None:
                result.telemetry.merge(point.telemetry)
    for idx, width in enumerate(total_widths):
        row = [width]
        for num_buses in bus_counts:
            point = series[num_buses][idx]
            row.append(format_objective(point.makespan))
        for num_buses in bus_counts:
            row.append(series[num_buses][idx].detail)
        table.add_row(row)

    from repro.util.plots import ascii_chart

    chart_series = {
        f"NB={nb}": [(p.budget, p.makespan) for p in series[nb] if p.feasible]
        for nb in bus_counts
    }
    result.add_chart(
        ascii_chart(chart_series, x_label="total TAM width W", y_label="T* (cycles)")
    )

    for num_buses in bus_counts:
        values = [p.makespan for p in series[num_buses] if p.feasible]
        result.check(len(values) >= 2, f"NB={num_buses}: at least two feasible widths")
        result.check(
            all(a >= b - 1e-6 for a, b in zip(values, values[1:])),
            f"NB={num_buses}: testing time non-increasing in total width",
        )
        result.check(
            values[-1] == min(values),
            f"NB={num_buses}: widest budget achieves the series minimum",
        )
    # Saturation: the two widest budgets of the largest series agree (knee
    # passed). Only guaranteed when the sweep actually reaches the knee, so
    # the check is gated on the default range; truncated custom ranges may
    # legitimately stop mid-slope.
    if list(total_widths) == DEFAULT_WIDTHS:
        widest = [p.makespan for p in series[bus_counts[0]] if p.feasible][-2:]
        result.check(
            len(widest) == 2 and abs(widest[0] - widest[1]) / max(widest[1], 1) < 0.2,
            "width curve saturates near the knee (<=20% change over the last step)",
        )
    return result


if __name__ == "__main__":
    print(run().render())
