"""T5 — combined power + layout constraints.

A budget grid per SOC: three power budgets x three distance budgets, the
optimal testing time in each cell (or INFEASIBLE). Shape claims:

- each cell is at least as slow as both of its single-constraint projections
  (combined constraints only shrink the feasible set);
- the loosest cell equals the unconstrained optimum;
- contradiction cells (a pair both forced and forbidden) are detected and
  reported as infeasible before any solving.
"""

from __future__ import annotations

from repro.core import DesignProblem, design
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.layout import grid_place
from repro.power import budget_sweep_points
from repro.soc import build_s1, build_s2
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError
from repro.util.tables import Table, format_objective

DEFAULT_ARCHS = {"S1": TamArchitecture([16, 16, 16]), "S2": TamArchitecture([32, 16, 16])}


def _solve(result, soc, arch, timing, backend, power_budget=None, floorplan=None, delta=None,
           policy=None):
    problem = DesignProblem(
        soc=soc,
        arch=arch,
        timing=timing,
        power_budget=power_budget,
        floorplan=floorplan,
        max_pair_distance=delta,
    )
    try:
        designed = design(problem, backend=backend, policy=policy)
    except InfeasibleError:
        return None
    result.telemetry.record(designed.stats)
    result.telemetry.record_fallback(designed.fallback)
    return designed.makespan


def run(socs=None, archs=None, timing: str = "serial", backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    result = ExperimentResult("T5", "Combined power + layout constraints: budget grid")
    result.telemetry.jobs = config.jobs
    archs = archs or DEFAULT_ARCHS
    with config.activate():
        for soc in socs or (build_s1(), build_s2()):
            arch = archs.get(soc.name) or TamArchitecture.even_split(48, 3)
            floorplan = grid_place(soc)

            power_points = budget_sweep_points(soc)
            # loose / middle / tight power budgets across the meaningful range
            p_choices = [power_points[-1] * 1.1, power_points[len(power_points) // 2], power_points[0] * 1.02]
            spread = floorplan.spread()
            d_choices = [spread * 1.01, spread * 0.66, spread * 0.45]

            table = result.add_table(
                Table(
                    ["P_max (mW)"] + [f"delta={d:.2f}mm" for d in d_choices],
                    title=f"{soc.name} on {arch}: T* per (P_max, delta) cell ({timing} timing)",
                )
            )
            unconstrained = _solve(result, soc, arch, timing, backend, policy=config.policy)
            result.check(unconstrained is not None, f"{soc.name}: unconstrained instance feasible")

            for p_max in p_choices:
                power_only = _solve(
                    result, soc, arch, timing, backend, power_budget=p_max, policy=config.policy
                )
                row = [round(p_max, 1)]
                for delta in d_choices:
                    layout_only = _solve(
                        result, soc, arch, timing, backend, floorplan=floorplan, delta=delta,
                        policy=config.policy,
                    )
                    combined = _solve(
                        result, soc, arch, timing, backend,
                        power_budget=p_max, floorplan=floorplan, delta=delta,
                        policy=config.policy,
                    )
                    if combined is not None:
                        for reference, label in ((power_only, "power-only"), (layout_only, "layout-only")):
                            result.check(
                                reference is not None and combined >= reference - 1e-6,
                                f"{soc.name} (P={p_max:.0f}, d={delta:.2f}): combined >= {label}",
                            )
                    row.append(format_objective(combined) if combined is not None else "INF")
                table.add_row(row)
            loosest = _solve(
                result, soc, arch, timing, backend,
                power_budget=p_choices[0], floorplan=floorplan, delta=d_choices[0],
                policy=config.policy,
            )
            result.check(
                loosest is not None and abs(loosest - unconstrained) < 1e-6,
                f"{soc.name}: loosest cell recovers the unconstrained optimum",
            )
    return result


if __name__ == "__main__":
    print(run().render())
