"""T2 — optimal unconstrained TAM design (ILP vs heuristics).

The paper's headline table: for each system and bus-count/width budget, the
ILP-optimal testing time, with solver effort, against the heuristics. Shape
claims verified:

- the ILP result is a certified optimum (validated assignment, and equal to
  HiGHS on every instance; equal to exhaustive search on S1);
- every heuristic is at least as slow as the optimum;
- adding buses (at the same total width) never helps beyond the largest
  core's own test time, and more total width never hurts.

The (SOC, budget) sweeps are independent exact solves, so ``config.jobs``
fans them across worker processes; the cross-checks, heuristic baselines,
and table assembly then run serially in input order, which keeps the
rendered tables identical at any worker count.
"""

from __future__ import annotations

from repro.core import design, design_best_architecture, run_all_baselines
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.runtime.parallel import run_parallel
from repro.soc import build_s1, build_s2
from repro.tam import exhaustive_optimal
from repro.util.tables import Table, format_objective

#: (total TAM width, bus count) budgets swept per SOC. NB=4 is exercised at
#: W=32 (the W=48 four-bus sweep enumerates ~1.2k width partitions x two
#: SOCs, which belongs in an overnight run, not the default harness).
DEFAULT_BUDGETS = ((32, 2), (32, 3), (32, 4), (48, 2), (48, 3))


def _solve_budget(payload: tuple):
    """Worker: the exact width-distribution sweep for one (SOC, W, NB) job."""
    soc, total_width, num_buses, timing, backend, policy = payload
    return design_best_architecture(
        soc, total_width, num_buses, timing=timing, backend=backend, policy=policy
    )


def run(
    socs=None,
    budgets=DEFAULT_BUDGETS,
    timing: str = "serial",
    backend: str = "bnb",
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    budgets = config.override("budgets", budgets)
    socs = list(socs or (build_s1(), build_s2()))
    result = ExperimentResult("T2", "Optimal unconstrained TAM design: ILP vs heuristics")
    result.telemetry.jobs = config.jobs

    with config.activate():
        # Fan out: every (SOC, budget) is an independent exact sweep.
        payloads = [
            (soc, total_width, num_buses, timing, backend, config.policy)
            for soc in socs
            for total_width, num_buses in budgets
        ]
        sweeps = run_parallel(_solve_budget, payloads, max_workers=config.jobs)
        sweeps_iter = iter(sweeps)

        for soc in socs:
            table = result.add_table(
                Table(
                    [
                        "W",
                        "NB",
                        "best widths",
                        "ILP T*",
                        "LPT",
                        "random",
                        "SA",
                        "nodes",
                        "LPs",
                        "pruned",
                    ],
                    title=f"{soc.name}: optimal testing time (cycles), {timing} timing",
                )
            )
            previous_by_nb: dict[int, float] = {}
            for total_width, num_buses in budgets:
                sweep = next(sweeps_iter)
                result.telemetry.merge(sweep.telemetry)
                best = sweep.best
                result.check(best is not None, f"{soc.name} W={total_width} NB={num_buses}: feasible")
                assert best is not None
                problem = best.problem

                # Independent optimality certificates.
                cross = design(problem, backend="scipy", **config.design_options())
                result.telemetry.record(cross.stats)
                result.check(
                    abs(cross.makespan - best.makespan) < 1e-6,
                    f"{soc.name} W={total_width} NB={num_buses}: bnb == HiGHS optimum",
                )
                if len(soc) <= 8:
                    oracle = exhaustive_optimal(soc, best.arch, problem.timing)
                    result.check(
                        abs(oracle.makespan - best.makespan) < 1e-6,
                        f"{soc.name} W={total_width} NB={num_buses}: ILP == exhaustive",
                    )

                heuristics = {
                    b.name: b.makespan for b in run_all_baselines(problem, seed=config.seed)
                }
                for name, value in heuristics.items():
                    result.check(
                        value >= best.makespan - 1e-6,
                        f"{soc.name} W={total_width} NB={num_buses}: {name} >= optimum",
                    )
                table.add_row(
                    [
                        total_width,
                        num_buses,
                        "+".join(str(w) for w in best.arch.widths),
                        format_objective(best.makespan),
                        format_objective(heuristics.get("lpt")),
                        format_objective(heuristics.get("random")),
                        format_objective(heuristics.get("sa")),
                        best.stats.nodes,
                        best.stats.lp_solves,
                        sweep.pruned,
                    ]
                )
                prior = previous_by_nb.get(num_buses)
                if prior is not None:
                    result.check(
                        best.makespan <= prior + 1e-6,
                        f"{soc.name} NB={num_buses}: more total width never hurts",
                    )
                previous_by_nb[num_buses] = best.makespan
    return result


if __name__ == "__main__":
    print(run().render())
