"""F4 — ILP scalability on synthetic SOCs.

Solves the unconstrained design ILP on seeded synthetic systems of growing
core count and reports branch-and-bound effort (nodes, LP solves, wall
time) next to HiGHS and, where tractable, the exhaustive search's node
count. Shape claims:

- our B&B and HiGHS agree on the optimum at every size (exactness);
- exhaustive agrees where it runs (n <= 10 here);
- B&B node counts grow with the core count while the greedy baseline stays
  near-instant yet suboptimal on at least one instance (the paper's case
  for paying for ILP).
"""

from __future__ import annotations

from repro.core import DesignProblem, design, lpt_assignment
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.obs import now
from repro.soc import generate_synthetic_soc
from repro.tam import TamArchitecture, exhaustive_optimal
from repro.util.tables import Table, format_objective

DEFAULT_SIZES = (4, 6, 8, 10, 12, 14)


def run(sizes=DEFAULT_SIZES, seed: int = 5, timing: str = "serial",
        arch: TamArchitecture | None = None,
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    sizes = config.override("sizes", sizes)
    arch = arch or TamArchitecture([32, 16, 16])
    result = ExperimentResult("F4", "ILP scalability: solver effort vs core count")
    result.telemetry.jobs = config.jobs
    table = result.add_table(
        Table(
            [
                "cores",
                "T* (cycles)",
                "bnb nodes",
                "bnb LPs",
                "bnb time (s)",
                "scipy time (s)",
                "exhaustive nodes",
                "LPT gap (%)",
            ],
            title=f"Synthetic SOCs on {arch} ({timing} timing, seed {seed})",
        )
    )
    node_counts = []
    any_lpt_gap = False
    # Deliberately uncached even when the config carries a cache: this
    # experiment *measures* solver effort, so every solve must be real.
    for size in sizes:
        soc = generate_synthetic_soc(size, seed=seed + size)
        problem = DesignProblem(soc=soc, arch=arch, timing=timing)

        start = now()
        ours = design(problem, backend="bnb", cache=False, **config.design_options())
        bnb_time = now() - start
        result.telemetry.record(ours.stats)
        result.telemetry.record_fallback(ours.fallback)

        start = now()
        reference = design(problem, backend="scipy", cache=False, **config.design_options())
        scipy_time = now() - start
        result.telemetry.record(reference.stats)
        result.check(
            abs(ours.makespan - reference.makespan) < 1e-6,
            f"n={size}: bnb optimum equals HiGHS optimum",
        )

        exhaustive_nodes = None
        if size <= 10:
            oracle = exhaustive_optimal(soc, arch, problem.timing)
            result.check(
                abs(oracle.makespan - ours.makespan) < 1e-6,
                f"n={size}: ILP optimum equals exhaustive optimum",
            )
            exhaustive_nodes = oracle.nodes_explored

        greedy = lpt_assignment(problem)
        gap = (greedy.makespan - ours.makespan) / ours.makespan * 100.0
        result.check(gap >= -1e-9, f"n={size}: LPT never beats the optimum")
        any_lpt_gap = any_lpt_gap or gap > 0.5
        node_counts.append(ours.stats.nodes)
        table.add_row(
            [
                size,
                format_objective(ours.makespan),
                ours.stats.nodes,
                ours.stats.lp_solves,
                round(bnb_time, 3),
                round(scipy_time, 3),
                exhaustive_nodes,
                round(gap, 1),
            ]
        )
    result.check(
        max(node_counts) > min(node_counts),
        "B&B effort grows across the size sweep",
    )
    # The suboptimality claim is only guaranteed under the default sweep
    # (where it is robust); custom configs may land on LPT-friendly instances.
    if sizes == DEFAULT_SIZES and arch.widths == (32, 16, 16) and seed == 5:
        result.check(any_lpt_gap, "LPT is measurably suboptimal on at least one instance")
    elif any_lpt_gap:
        result.checks.append("LPT is measurably suboptimal on at least one instance")
    else:
        result.note("LPT matched the optimum on every instance of this custom sweep")
    return result


if __name__ == "__main__":
    print(run().render())
