"""T1 — benchmark SOC composition (the paper's core-data table).

Reconstructs the per-core table the paper opens its evaluation with: for
each core of S1 and S2, the structural statistics, the test interface width
``w_i``, the base test time ``t_i`` (cycles at that width), the test power,
and the wrapper Pareto knee (widest width that still helps).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_s1, build_s2
from repro.tam.timing import FixedWidthTiming
from repro.util.tables import Table
from repro.wrapper import pareto_widths


def run(socs=None, config: ExperimentConfig | None = None) -> ExperimentResult:
    # No ILP solves here — config is accepted for the uniform run() surface.
    ExperimentConfig.coerce(config)
    result = ExperimentResult(
        "T1", "SOC composition: per-core test data (paper's core-data table)"
    )
    timing = FixedWidthTiming()
    for soc in socs or (build_s1(), build_s2()):
        table = result.add_table(
            Table(
                [
                    "core",
                    "type",
                    "gates",
                    "FFs",
                    "patterns",
                    "w_i",
                    "t_i (cycles)",
                    "power (mW)",
                    "pareto knee",
                ],
                title=f"{soc.name} composition",
            )
        )
        for core in soc:
            base = timing.base_time(core)
            knee = pareto_widths(core, 32)[-1]
            table.add_row(
                [
                    core.name,
                    "seq" if core.is_sequential else "comb",
                    core.num_gates,
                    core.num_flipflops,
                    core.num_patterns,
                    core.test_width,
                    base,
                    core.test_power,
                    knee,
                ]
            )
            result.check(base > 0, f"{soc.name}/{core.name}: positive base test time")
        widths = {core.test_width for core in soc}
        result.check(
            len(widths) > 1,
            f"{soc.name}: heterogeneous core interface widths {sorted(widths)}",
        )
        result.note(
            f"{soc.name}: {len(soc)} cores, total gates {soc.total_gates}, "
            f"power ceiling {soc.total_test_power:.1f} mW"
        )
    return result


if __name__ == "__main__":
    print(run().render())
