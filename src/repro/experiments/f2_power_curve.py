"""F2 — testing time vs power budget (the power staircase).

The figure form of T3: the full staircase of optimal testing time as
``P_max`` sweeps the conflict change points, for two bus architectures side
by side. Shape claims: each series is non-increasing in the budget; the
narrower architecture is never faster than the wider one at equal budget;
both saturate at their unconstrained optima.
"""

from __future__ import annotations

from repro.core import power_budget_sweep
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_s1
from repro.tam import TamArchitecture
from repro.util.tables import Table, format_objective


def run(soc=None, archs=None, timing: str = "serial", backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    soc = soc or build_s1()
    archs = archs or (TamArchitecture([16, 16]), TamArchitecture([16, 16, 16]))
    result = ExperimentResult("F2", "Testing time vs power budget staircase")
    result.telemetry.jobs = config.jobs
    with config.activate():
        sweeps = [
            power_budget_sweep(soc, arch, timing=timing, backend=backend,
                               jobs=config.jobs, policy=config.policy)
            for arch in archs
        ]
    for sweep in sweeps:
        for point in sweep:
            if point.telemetry is not None:
                result.telemetry.merge(point.telemetry)
    budgets = [p.budget for p in sweeps[0]]
    table = result.add_table(
        Table(
            ["P_max (mW)"] + [f"{arch} T*" for arch in archs],
            title=f"{soc.name}: power staircase ({timing} timing)",
        )
    )
    for idx, budget in enumerate(budgets):
        table.add_row(
            [round(budget, 1)] + [format_objective(sweep[idx].makespan) for sweep in sweeps]
        )

    from repro.util.plots import ascii_chart, staircase

    chart_series = {
        str(arch): staircase([(p.budget, p.makespan) for p in sweep if p.feasible])
        for arch, sweep in zip(archs, sweeps)
    }
    result.add_chart(
        ascii_chart(chart_series, x_label="P_max (mW)", y_label="T* (cycles)")
    )

    for arch, sweep in zip(archs, sweeps):
        values = [p.makespan for p in sweep if p.feasible]
        result.check(values != [], f"{arch}: some budget is feasible")
        result.check(
            all(a >= b - 1e-6 for a, b in zip(values, values[1:])),
            f"{arch}: staircase non-increasing in budget",
        )
    # Wider architecture dominates at every budget where both are feasible.
    small, large = sweeps[0], sweeps[-1]
    for p_small, p_large in zip(small, large):
        if p_small.feasible and p_large.feasible:
            result.check(
                p_large.makespan <= p_small.makespan + 1e-6,
                f"P_max={p_small.budget:.1f}: more buses never hurt (same widths each)",
            )
    tight = [p for p in large if p.feasible]
    result.check(
        tight[0].makespan >= tight[-1].makespan,
        "tightest feasible budget is the slowest point of the staircase",
    )
    return result


if __name__ == "__main__":
    print(run().render())
