"""F3 — TAM wirelength vs testing time tradeoff.

Sweeps the layout budget ``delta`` and reports, per point, the optimal
testing time and the routing cost of the optimal design, then extracts the
Pareto frontier. Run for both the deterministic grid floorplan and the
simulated-annealing floorplan to show the tradeoff is a property of the
problem, not of one placement.

Shape claims: the frontier is non-trivial (at least two points — spending
wirelength buys testing time); the frontier is monotone (sorted by time,
wirelength is non-increasing... i.e. the two objectives genuinely conflict).
"""

from __future__ import annotations

from repro.core import distance_budget_sweep
from repro.core.pareto import pareto_front
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.layout import anneal_place, grid_place
from repro.soc import build_s1
from repro.tam import TamArchitecture
from repro.util.tables import Table, format_objective


def run(soc=None, arch=None, timing: str = "serial", backend: str = "bnb",
        anneal_iterations: int = 400, seed: int = 11,
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    soc = soc or build_s1()
    arch = arch or TamArchitecture([16, 16, 16])
    result = ExperimentResult("F3", "Wirelength / testing-time tradeoff (Pareto frontier)")
    result.telemetry.jobs = config.jobs

    floorplans = {
        "grid": grid_place(soc),
        "anneal": anneal_place(soc, seed=seed, iterations=anneal_iterations),
    }
    with config.activate():
        sweeps = {}
        for label, floorplan in floorplans.items():
            result.check(floorplan.is_legal(), f"{label} floorplan is legal")
            sweeps[label] = distance_budget_sweep(
                soc, arch, floorplan, timing=timing, backend=backend,
                jobs=config.jobs, policy=config.policy,
            )
    for label, sweep in sweeps.items():
        for point in sweep:
            if point.telemetry is not None:
                result.telemetry.merge(point.telemetry)
        table = result.add_table(
            Table(
                ["delta (mm)", "T* (cycles)", "WL (wire-mm)", "constraints"],
                title=f"{soc.name} on {arch}, {label} floorplan",
            )
        )
        for point in sweep:
            table.add_row(
                [
                    round(point.budget, 2),
                    format_objective(point.makespan),
                    None if point.wirelength is None else round(point.wirelength, 1),
                    point.detail,
                ]
            )
        front = pareto_front(sweep)
        front_table = result.add_table(
            Table(["T* (cycles)", "WL (wire-mm)"], title=f"{label} Pareto frontier")
        )
        for point in sorted(front, key=lambda p: p.makespan):
            front_table.add_row([format_objective(point.makespan), round(point.wirelength, 1)])
        from repro.util.plots import ascii_chart

        feasible = [p for p in sweep if p.feasible and p.wirelength is not None]
        result.add_chart(
            ascii_chart(
                {f"{label} sweep": [(p.makespan, p.wirelength) for p in feasible]},
                x_label="T* (cycles)",
                y_label="WL (wire-mm)",
                height=10,
            )
        )
        result.check(front != [], f"{label}: frontier is non-empty")
        ordered = sorted(front, key=lambda p: p.makespan)
        result.check(
            all(a.wirelength >= b.wirelength - 1e-9 for a, b in zip(ordered, ordered[1:])),
            f"{label}: frontier monotone — faster designs cost wirelength",
        )
        if len(ordered) >= 2:
            result.note(
                f"{label}: spending {ordered[0].wirelength - ordered[-1].wirelength:.1f} "
                f"wire-mm buys {ordered[-1].makespan - ordered[0].makespan:.0f} cycles"
            )
    return result


if __name__ == "__main__":
    print(run().render())
