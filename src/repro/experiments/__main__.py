"""Command-line entry point: ``python -m repro.experiments [ID|all]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import ExperimentConfig, REGISTRY, run_all, run_experiment
from repro.obs import SolvePolicy, now
from repro.runtime import DEFAULT_CACHE_DIR


def build_config(args: argparse.Namespace) -> ExperimentConfig:
    cache_dir = None if args.no_cache else args.cache
    policy = None
    if args.deadline is not None or args.node_budget is not None:
        policy = SolvePolicy(deadline=args.deadline, node_budget=args.node_budget)
    return ExperimentConfig(
        jobs=args.jobs, cache_dir=cache_dir, seed=args.seed, policy=policy
    )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables/figures (and extensions).",
    )
    parser.add_argument(
        "target", nargs="?", default="all",
        help=f"experiment id ({', '.join(sorted(REGISTRY))}) or 'all'",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep fan-out (default: 1, serial)",
    )
    parser.add_argument(
        "--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None, metavar="DIR",
        help=f"persist solved instances under DIR (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the solve cache entirely"
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="seed for stochastic baselines (default: 7)"
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="per-solve wall-clock budget; exhausted solves degrade gracefully",
    )
    parser.add_argument(
        "--node-budget", type=int, default=None, metavar="N",
        help="per-solve B&B node budget; exhausted solves degrade gracefully",
    )
    args = parser.parse_args(argv)

    config = build_config(args)
    start = now()
    if args.target.lower() == "all":
        results = run_all(config=config)
    else:
        results = [run_experiment(args.target, config=config)]
    for result in results:
        print(result.render())
        print()
    elapsed = now() - start
    print(f"[{len(results)} experiment(s), {elapsed:.1f}s total; ids: {', '.join(sorted(REGISTRY))}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
