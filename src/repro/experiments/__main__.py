"""Command-line entry point: ``python -m repro.experiments [ID|all]``."""

from __future__ import annotations

import sys
import time

from repro.experiments import REGISTRY, run_all, run_experiment


def main(argv: list[str]) -> int:
    target = argv[0] if argv else "all"
    start = time.perf_counter()
    if target.lower() == "all":
        results = run_all()
    else:
        results = [run_experiment(target)]
    for result in results:
        print(result.render())
        print()
    elapsed = time.perf_counter() - start
    print(f"[{len(results)} experiment(s), {elapsed:.1f}s total; ids: {', '.join(sorted(REGISTRY))}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
