"""E2 (extension) — the bus-count knee.

At a fixed pin budget, more buses buy concurrency but starve each bus of
wires. This extension sweeps NB at fixed W with the exact designer and
shows the non-monotone knee (the reason the paper treats the architecture,
not just the assignment, as the design variable).

Shape claims: one bus equals full serialization; some intermediate count is
optimal; at W < NB the point is infeasible.
"""

from __future__ import annotations

from repro.core import explore_bus_counts
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_d695, build_s1
from repro.tam import make_timing_model
from repro.util.tables import Table, format_objective


def run(socs=None, total_width: int = 32, max_buses: int = 5, timing: str = "serial",
        backend: str = "scipy", config: ExperimentConfig | None = None) -> ExperimentResult:
    # Default backend is HiGHS: this sweep solves hundreds of ILPs and the
    # bnb/scipy equivalence is continuously asserted by the test suite.
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    total_width = config.override("total_width", total_width)
    max_buses = config.override("max_buses", max_buses)
    result = ExperimentResult("E2", "Extension: testing time vs bus count at fixed W")
    result.telemetry.jobs = config.jobs
    timing_model = make_timing_model(timing) if isinstance(timing, str) else timing
    with config.activate():
        for soc in socs or (build_s1(), build_d695()):
            points = explore_bus_counts(
                soc, total_width, max_buses, timing=timing_model, backend=backend,
                jobs=config.jobs, policy=config.policy,
            )
            table = result.add_table(
                Table(
                    ["NB", "T* (cycles)", "best widths"],
                    title=f"{soc.name}: bus-count exploration at W={total_width} ({timing} timing)",
                )
            )
            for point in points:
                if point.telemetry is not None:
                    result.telemetry.merge(point.telemetry)
                table.add_row(
                    [
                        point.num_buses,
                        format_objective(point.makespan),
                        "+".join(str(w) for w in point.arch_widths) if point.arch_widths else None,
                    ]
                )
            serial_total = sum(
                timing_model.time_on_bus(core, total_width) for core in soc
            )
            result.check(
                points[0].makespan is not None
                and abs(points[0].makespan - serial_total) < 1e-6,
                f"{soc.name}: NB=1 equals full serialization ({serial_total:.0f} cycles)",
            )
            feasible = [p for p in points if p.makespan is not None]
            best_nb = min(feasible, key=lambda p: p.makespan).num_buses
            result.check(best_nb > 1, f"{soc.name}: concurrency helps (knee at NB={best_nb})")
            result.note(f"{soc.name}: best bus count at W={total_width} is NB={best_nb}")
    return result


if __name__ == "__main__":
    print(run().render())
