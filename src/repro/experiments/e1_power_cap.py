"""E1 (extension) — the price of hard peak-power compliance.

The paper's pairwise encoding leaves a conservatism gap: 3+ mutually
compatible cores may overlap and jointly exceed ``P_max`` (measured in T3).
This extension keeps the ILP-optimal assignment but re-schedules with a
hard instantaneous cap at ``P_max`` and reports the slowdown — quantifying
what true peak compliance costs on top of the paper's model.

Shape claims: every capped schedule's true peak respects the cap; the
capped makespan is never below the assignment's makespan; a cap at the
SOC's total power is free (zero slowdown).
"""

from __future__ import annotations

from repro.core import DesignProblem, build_schedule, design
from repro.core.power_schedule import schedule_with_power_cap
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power import budget_sweep_points
from repro.soc import build_d695, build_s1
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError
from repro.util.tables import Table, format_objective

DEFAULT_ARCHS = {"S1": TamArchitecture([16, 16, 16]), "d695": TamArchitecture([32, 16, 16])}


def run(socs=None, archs=None, timing: str = "serial", backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    result = ExperimentResult(
        "E1", "Extension: hard peak-power cap vs the paper's pairwise model"
    )
    result.telemetry.jobs = config.jobs
    archs = archs or DEFAULT_ARCHS
    with config.activate():
        for soc in socs or (build_s1(), build_d695()):
            arch = archs.get(soc.name) or TamArchitecture.even_split(48, 3)
            table = result.add_table(
                Table(
                    [
                        "P_max (mW)",
                        "T* pairwise (cycles)",
                        "true peak (mW)",
                        "T capped (cycles)",
                        "slowdown (%)",
                    ],
                    title=f"{soc.name} on {arch}: pairwise ILP vs hard-capped schedule",
                )
            )
            budgets = budget_sweep_points(soc)
            picks = [budgets[0], budgets[len(budgets) // 2], budgets[-1], budgets[-1] * 1.2]
            for budget in picks:
                problem = DesignProblem(soc=soc, arch=arch, timing=timing, power_budget=budget)
                try:
                    designed = design(problem, backend=backend, **config.design_options())
                except InfeasibleError:
                    table.add_row([round(budget, 1), None, None, None, None])
                    continue
                result.telemetry.record(designed.stats)
                result.telemetry.record_fallback(designed.fallback)
                plain = build_schedule(problem, designed.assignment)
                capped = schedule_with_power_cap(problem, designed.assignment, budget)
                profile = capped.schedule.power_profile()
                result.check(
                    profile.respects(budget),
                    f"{soc.name} P={budget:.1f}: capped schedule peak within cap",
                )
                result.check(
                    capped.makespan >= designed.makespan - 1e-9,
                    f"{soc.name} P={budget:.1f}: cap never speeds the schedule up",
                )
                table.add_row(
                    [
                        round(budget, 1),
                        format_objective(designed.makespan),
                        round(plain.peak_power, 1),
                        format_objective(capped.makespan),
                        round(capped.slowdown * 100, 1),
                    ]
                )
            # A cap at total power changes nothing.
            problem = DesignProblem(soc=soc, arch=arch, timing=timing)
            designed = design(problem, backend=backend, **config.design_options())
            result.telemetry.record(designed.stats)
            result.telemetry.record_fallback(designed.fallback)
            free = schedule_with_power_cap(problem, designed.assignment, soc.total_test_power)
            result.check(
                abs(free.slowdown) < 1e-9,
                f"{soc.name}: cap at total SOC power costs nothing",
            )
    result.note(
        "slowdown > 0 rows are exactly where T3's 'sched peak' exceeded P_max: "
        "the pairwise model allowed a 3+-core overlap the hard cap must break."
    )
    return result


if __name__ == "__main__":
    print(run().render())
