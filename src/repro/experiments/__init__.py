"""Experiment harnesses regenerating every table and figure.

Each module exposes ``run(**options) -> ExperimentResult``; results carry
rendered ASCII tables plus self-checked *shape assertions* — the qualitative
claims the DAC 2000 paper makes (optimality dominance, monotone budget
staircases, wirelength/time tradeoff direction). A failed shape assertion
raises, so the benchmark wrappers double as integration tests.

Run from the command line::

    python -m repro.experiments T2       # one experiment
    python -m repro.experiments all      # the full evaluation
"""

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments import (
    e1_power_cap,
    e2_bus_count,
    e3_min_width,
    e4_architectures,
    e5_resources,
    t1_composition,
    t2_unconstrained,
    t3_power,
    t4_layout,
    t5_combined,
    f1_width,
    f2_power_curve,
    f3_tradeoff,
    f4_scaling,
)

#: Experiment id -> module with a ``run`` callable. T/F ids reproduce the
#: paper's tables/figures; E ids are this library's extensions.
REGISTRY = {
    "E1": e1_power_cap,
    "E2": e2_bus_count,
    "E3": e3_min_width,
    "E4": e4_architectures,
    "E5": e5_resources,
    "T1": t1_composition,
    "T2": t2_unconstrained,
    "T3": t3_power,
    "T4": t4_layout,
    "T5": t5_combined,
    "F1": f1_width,
    "F2": f2_power_curve,
    "F3": f3_tradeoff,
    "F4": f4_scaling,
}


def run_experiment(
    experiment_id: str, config: ExperimentConfig | None = None, **options
) -> ExperimentResult:
    """Run one experiment by id (T1..T5, F1..F4).

    ``config`` carries the shared runtime knobs (jobs, cache, seed, backend
    override, grid overrides); ``options`` are forwarded to the experiment's
    own ``run()`` signature.
    """
    key = experiment_id.upper()
    if key not in REGISTRY:
        raise KeyError(f"unknown experiment {experiment_id!r}; have {sorted(REGISTRY)}")
    if config is not None:
        options["config"] = config
    return REGISTRY[key].run(**options)


def run_all(config: ExperimentConfig | None = None, **options) -> list[ExperimentResult]:
    """Run the entire evaluation in order."""
    return [run_experiment(key, config=config, **options) for key in sorted(REGISTRY)]


__all__ = ["ExperimentConfig", "ExperimentResult", "REGISTRY", "run_experiment", "run_all"]
