"""E3 (extension) — minimum TAM width for a testing-time budget.

The dual design question the companion ILP paper poses: the tester channel
count is the scarce resource, so find the smallest total width whose
optimal testing time meets a budget. Swept over budgets derived from the
width staircase so every row is meaningful.

Shape claims: required width is non-increasing in the time budget; the
returned design meets its budget; the width just below misses it (binary
search exactness, verified independently).
"""

from __future__ import annotations

from repro.core import design_best_architecture, minimize_width
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_s1
from repro.util.errors import InfeasibleError
from repro.util.tables import Table, format_objective


def run(soc=None, num_buses: int = 2, timing: str = "serial", backend: str = "scipy",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    # HiGHS default: the binary search re-solves many width sweeps; bnb/scipy
    # equivalence is asserted by the test suite.
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    soc = soc or build_s1()
    result = ExperimentResult("E3", "Extension: minimum TAM width per testing-time budget")
    result.telemetry.jobs = config.jobs
    with config.activate():
        # Budgets: the achievable times at a few widths (guaranteed reachable).
        probe_widths = config.override("probe_widths", [8, 16, 24, 32])
        budgets = []
        for width in probe_widths:
            sweep = design_best_architecture(
                soc, width, num_buses, timing=timing, backend=backend,
                clamp_useless_width=True, **config.design_options(),
            )
            result.telemetry.merge(sweep.telemetry)
            if sweep.best is not None:
                budgets.append(sweep.best.makespan)
        table = result.add_table(
            Table(
                ["time budget (cycles)", "min W", "best widths", "T* (cycles)"],
                title=f"{soc.name}: width minimization over {num_buses} buses ({timing} timing)",
            )
        )
        previous_width = None
        for budget in sorted(set(budgets), reverse=True):  # loosest first
            minimum = minimize_width(
                soc, num_buses, budget, timing=timing, backend=backend, max_width=64,
                **config.design_options(),
            )
            result.check(
                minimum.design.makespan <= budget + 1e-9,
                f"budget {budget:.0f}: returned design meets it",
            )
            if minimum.min_width > num_buses:
                try:
                    below = design_best_architecture(
                        soc, minimum.min_width - 1, num_buses,
                        timing=timing, backend=backend, clamp_useless_width=True,
                        **config.design_options(),
                    )
                    result.telemetry.merge(below.telemetry)
                    result.check(
                        below.best is None or below.best.makespan > budget + 1e-9,
                        f"budget {budget:.0f}: one wire less misses the budget",
                    )
                except InfeasibleError:
                    pass
            if previous_width is not None:
                result.check(
                    minimum.min_width >= previous_width,
                    f"budget {budget:.0f}: tighter budgets need at least as many wires",
                )
            previous_width = minimum.min_width
            table.add_row(
                [
                    round(budget),
                    minimum.min_width,
                    "+".join(str(w) for w in minimum.design.arch.widths),
                    format_objective(minimum.design.makespan),
                ]
            )
    return result


if __name__ == "__main__":
    print(run().render())
