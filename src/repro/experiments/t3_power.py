"""T3 — power-constrained design.

Sweeps the power budget ``P_max`` over exactly the budgets where the
conflict-pair set changes and reports the optimal testing time, the number
of forced pairs/merged groups, and — via the concrete schedule — the *true*
instantaneous peak power, quantifying the pairwise model's conservatism.

Shape claims: testing time is non-increasing in the budget; at/above the
largest pairwise power sum the unconstrained optimum is recovered; every
schedule's pairwise-concurrent power respects the budget it was designed
for.
"""

from __future__ import annotations

import itertools
import math

from repro.core import DesignProblem, build_schedule, design
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.power import budget_sweep_points, max_clique_power, power_groups
from repro.soc import build_s1, build_s2
from repro.tam import TamArchitecture
from repro.util.errors import InfeasibleError
from repro.util.tables import Table, format_objective

DEFAULT_ARCHS = {"S1": TamArchitecture([16, 16, 16]), "S2": TamArchitecture([32, 16, 16])}


def _max_pairwise_concurrent(schedule, budget) -> float:
    """Largest concurrent *pair* power in the schedule (the modeled quantity)."""
    worst = 0.0
    for a, b in itertools.combinations(schedule.sessions, 2):
        if a.bus != b.bus and a.start < b.end and b.start < a.end:
            worst = max(worst, a.power + b.power)
    return worst


def run(socs=None, archs=None, timing: str = "serial", backend: str = "bnb",
        config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    result = ExperimentResult("T3", "Power-constrained design: testing time vs P_max")
    result.telemetry.jobs = config.jobs
    archs = archs or DEFAULT_ARCHS
    with config.activate():
        for soc in socs or (build_s1(), build_s2()):
            arch = archs.get(soc.name) or TamArchitecture.even_split(48, 3)
            table = result.add_table(
                Table(
                    [
                        "P_max (mW)",
                        "T* (cycles)",
                        "forced pairs",
                        "merged groups",
                        "sched peak (mW)",
                        "pairwise peak",
                        "clique power",
                    ],
                    title=f"{soc.name} on {arch}: power budget sweep ({timing} timing)",
                )
            )
            budgets = budget_sweep_points(soc)
            budgets = budgets + [budgets[-1] * 1.1]
            baseline = design(
                DesignProblem(soc=soc, arch=arch, timing=timing),
                backend=backend,
                **config.design_options(),
            )
            result.telemetry.record(baseline.stats)
            result.telemetry.record_fallback(baseline.fallback)
            unconstrained = baseline.makespan
            previous = math.inf
            for budget in sorted(budgets):
                problem = DesignProblem(soc=soc, arch=arch, timing=timing, power_budget=budget)
                try:
                    designed = design(problem, backend=backend, **config.design_options())
                except InfeasibleError:
                    table.add_row([round(budget, 1), None, len(problem.forced_pairs),
                                   len(power_groups(soc, budget)), None, None, None])
                    continue
                result.telemetry.record(designed.stats)
                result.telemetry.record_fallback(designed.fallback)
                schedule = build_schedule(problem, designed.assignment, policy="power_stagger")
                pairwise_peak = _max_pairwise_concurrent(schedule, budget)
                result.check(
                    pairwise_peak <= budget + 1e-6,
                    f"{soc.name} P_max={budget:.1f}: concurrent pair power within budget",
                )
                result.check(
                    designed.makespan <= previous + 1e-6,
                    f"{soc.name} P_max={budget:.1f}: time non-increasing in budget",
                )
                previous = designed.makespan
                table.add_row(
                    [
                        round(budget, 1),
                        format_objective(designed.makespan),
                        len(problem.forced_pairs),
                        len(power_groups(soc, budget)),
                        round(schedule.peak_power, 1),
                        round(pairwise_peak, 1),
                        round(max_clique_power(soc, budget), 1),
                    ]
                )
            result.check(
                abs(previous - unconstrained) < 1e-6,
                f"{soc.name}: loosest budget recovers the unconstrained optimum "
                f"({unconstrained:.0f} cycles)",
            )
            result.note(
                f"{soc.name}: 'sched peak' above 'P_max' rows expose the pairwise "
                "encoding's known conservatism gap (3+ compatible cores may overlap)."
            )
    return result


if __name__ == "__main__":
    print(run().render())
