"""E4 (extension) — access architecture styles compared.

Reproduces the classic multiplexed / daisy-chain / distribution / test-bus
comparison (Aerts & Marinissen, ITC'98) over this library's wrapper
substrate, with the paper's test-bus architecture solved exactly. One pin
budget per row; all styles share the flexible wrapper model.

Shape claims: multiplexed and distribution times are non-increasing in W;
daisy-chain always pays its bypass overhead over multiplexed; distribution
is infeasible below one wire per core and *wins or ties at generous
budgets* while the bus styles win at starved budgets — the crossover the
literature reports.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.soc import build_d695, build_s1
from repro.tam import compare_architectures
from repro.util.tables import Table, format_objective

DEFAULT_WIDTHS = (8, 16, 24, 32, 48)


def run(socs=None, total_widths=DEFAULT_WIDTHS, num_buses: int = 3,
        backend: str = "scipy", config: ExperimentConfig | None = None) -> ExperimentResult:
    config = ExperimentConfig.coerce(config)
    backend = config.resolve_backend(backend)
    total_widths = config.override("total_widths", total_widths)
    result = ExperimentResult("E4", "Extension: access architecture styles at equal pin budgets")
    result.telemetry.jobs = config.jobs
    with config.activate():
        for soc in socs or (build_s1(), build_d695()):
            table = result.add_table(
                Table(
                    ["W", "multiplexed", "daisychain", "distribution", "test bus", "winner"],
                    title=f"{soc.name}: testing time (cycles) per architecture style "
                          f"(flexible wrappers, {num_buses}-bus test bus)",
                )
            )
            prev_mux = prev_dist = None
            saw_distribution_win = False
            saw_bus_win = False
            for width in total_widths:
                comparison = compare_architectures(soc, width, num_buses=num_buses, backend=backend)
                winner = comparison.best_style()
                saw_distribution_win |= winner == "distribution"
                saw_bus_win |= winner == "test_bus"
                result.check(
                    comparison.daisychain >= comparison.multiplexed,
                    f"{soc.name} W={width}: daisy-chain pays bypass overhead",
                )
                if prev_mux is not None:
                    result.check(
                        comparison.multiplexed <= prev_mux + 1e-9,
                        f"{soc.name} W={width}: multiplexed non-increasing in W",
                    )
                if prev_dist is not None and comparison.distribution is not None:
                    result.check(
                        comparison.distribution <= prev_dist + 1e-9,
                        f"{soc.name} W={width}: distribution non-increasing in W",
                    )
                prev_mux = comparison.multiplexed
                if comparison.distribution is not None:
                    prev_dist = comparison.distribution
                table.add_row(
                    [
                        width,
                        format_objective(comparison.multiplexed),
                        format_objective(comparison.daisychain),
                        format_objective(comparison.distribution),
                        format_objective(comparison.test_bus),
                        winner,
                    ]
                )
            result.check(
                saw_bus_win or saw_distribution_win,
                f"{soc.name}: a partitioned style (bus or distribution) wins somewhere",
            )
            result.note(
                f"{soc.name}: shared-medium styles (multiplexed/daisy-chain) lose to "
                "partitioned styles once the budget affords concurrency — the paper's "
                "motivation for the test-bus architecture."
            )
    return result


if __name__ == "__main__":
    print(run().render())
