"""Combinatorial enumeration helpers.

The TAM design space enumerates *compositions* of the total TAM width W into
``NB`` positive bus widths (ordered, because buses are distinguishable by the
cores routed to them) and, for exhaustive baselines, *set partitions* of the
core set into at most ``NB`` blocks. Both enumerators are generators so large
spaces can be streamed and short-circuited.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence


def compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield all ordered ways to write ``total`` as ``parts`` positive ints.

    A composition of ``W`` into ``NB`` parts models a TAM width distribution:
    every bus gets at least one wire and widths sum to ``W``. There are
    ``C(total - 1, parts - 1)`` of them (stars and bars).

    >>> sorted(compositions(4, 2))
    [(1, 3), (2, 2), (3, 1)]
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < parts:
        return
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in compositions(total - first, parts - 1):
            yield (first,) + rest


def bounded_compositions(
    total: int, parts: int, lower: int = 1, upper: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield compositions of ``total`` with every part in ``[lower, upper]``.

    Used when bus widths are clamped (e.g. a bus can never be wider than the
    widest core interface it must feed, or narrower than some routing-imposed
    minimum).
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if lower < 0:
        raise ValueError(f"lower bound must be non-negative, got {lower}")
    hi = total if upper is None else upper
    if parts == 1:
        if lower <= total <= hi:
            yield (total,)
        return
    for first in range(lower, hi + 1):
        remaining = total - first
        if remaining < lower * (parts - 1) or remaining > hi * (parts - 1):
            continue
        for rest in bounded_compositions(remaining, parts - 1, lower, upper):
            yield (first,) + rest


def num_compositions(total: int, parts: int) -> int:
    """Return the number of compositions of ``total`` into ``parts`` parts.

    >>> num_compositions(4, 2)
    3
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < parts:
        return 0
    return math.comb(total - 1, parts - 1)


def partitions(
    total: int, max_parts: int | None = None, max_part: int | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield integer partitions of ``total`` in non-increasing order.

    Partitions (unordered compositions) are used to dedupe symmetric width
    distributions when all buses are interchangeable, shrinking the design
    sweep by up to ``NB!``. ``max_part`` caps individual parts (bus widths
    beyond a core's useful range are wasted wires, so sweeps clamp them).

    >>> sorted(partitions(4, 2))
    [(2, 2), (3, 1), (4,)]
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if max_part is not None and max_part <= 0:
        raise ValueError(f"max_part must be positive, got {max_part}")

    def _gen(remaining: int, largest: int, parts_left: int | None) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        if parts_left is not None and parts_left == 0:
            return
        for part in range(min(remaining, largest), 0, -1):
            next_parts = None if parts_left is None else parts_left - 1
            for rest in _gen(remaining - part, part, next_parts):
                yield (part,) + rest

    start = total if max_part is None else min(total, max_part)
    yield from _gen(total, start, max_parts)


def set_partitions(items: Sequence, max_blocks: int) -> Iterator[list[list]]:
    """Yield partitions of ``items`` into at most ``max_blocks`` nonempty blocks.

    This drives the exhaustive-optimal TAM baseline on small SOCs: every way
    of distributing cores over indistinguishable buses is one set partition.
    Blocks are emitted in first-seen order, so each partition appears once.
    """
    if max_blocks <= 0:
        raise ValueError(f"max_blocks must be positive, got {max_blocks}")
    items = list(items)
    if not items:
        yield []
        return

    def _gen(index: int, blocks: list[list]) -> Iterator[list[list]]:
        if index == len(items):
            yield [list(block) for block in blocks]
            return
        item = items[index]
        for block in blocks:
            block.append(item)
            yield from _gen(index + 1, blocks)
            block.pop()
        if len(blocks) < max_blocks:
            blocks.append([item])
            yield from _gen(index + 1, blocks)
            blocks.pop()

    yield from _gen(0, [])


def stirling2(n: int, k: int) -> int:
    """Return S(n, k): the number of partitions of an n-set into k blocks.

    >>> stirling2(4, 2)
    7
    """
    if n < 0 or k < 0:
        raise ValueError("arguments must be non-negative")
    if k == 0:
        return 1 if n == 0 else 0
    if k > n:
        return 0
    row = [1] + [0] * k
    for _ in range(n):
        new_row = [0] * (k + 1)
        for j in range(1, k + 1):
            new_row[j] = j * row[j] + row[j - 1]
        row = new_row
        row[0] = 0
    return row[k]
