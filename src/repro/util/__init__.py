"""Shared utilities: combinatorics, formatting, randomness, and errors.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.util.combinatorics import (
    compositions,
    num_compositions,
    partitions,
    set_partitions,
    bounded_compositions,
)
from repro.util.errors import (
    ReproError,
    InfeasibleError,
    ValidationError,
    SolverError,
)
from repro.util.rng import make_rng
from repro.util.tables import Table, format_table

__all__ = [
    "compositions",
    "num_compositions",
    "partitions",
    "set_partitions",
    "bounded_compositions",
    "ReproError",
    "InfeasibleError",
    "ValidationError",
    "SolverError",
    "make_rng",
    "Table",
    "format_table",
]
