"""Plain-text table rendering for the experiment harness.

The DAC paper reports its results as tables; our harness regenerates them as
aligned ASCII so the rows can be eyeballed against the paper and diffed
between runs. Intentionally minimal: no colors, no wrapping, stable output.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


def format_objective(value: float | None, decimals: int = 6) -> float | None:
    """Canonicalize a solver objective/makespan for tabular output.

    LP-backed objectives can differ across BLAS builds and platforms in the
    last few ulps; tables built from raw floats then diff between runs for
    no mathematical reason. Rounding to ``decimals`` places (default 6 — far
    below the integer cycle counts the models produce, far above float
    noise) makes the rendered value a platform-stable function of the
    mathematical optimum. ``None`` (infeasible cells) and non-finite values
    pass through unchanged.
    """
    if value is None:
        return None
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        return value
    rounded = round(value, decimals)
    if rounded == 0.0:
        return 0.0  # normalize -0.0 so renders never flip sign on noise
    return rounded


def _render_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """An accumulating table: add rows as an experiment sweeps, render once.

    >>> t = Table(["W", "time"], title="Fig 1")
    >>> t.add_row([16, 1200])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Fig 1
    W  | time
    ---+-----
    16 | 1200
    """

    headers: list[str]
    title: str | None = None
    rows: list[list] = field(default_factory=list)

    def add_row(self, row: Sequence) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, name: str) -> list:
        """Return one column by header name (for shape assertions in benches)."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; have {self.headers}") from None
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
