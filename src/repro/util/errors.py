"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler while still
letting programming errors (``TypeError`` and friends) propagate untouched.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError):
    """Raised when input data fails structural validation.

    Examples: a test bus of non-positive width, a core assigned to a
    nonexistent bus, or an SOC with duplicate core names.
    """


class InfeasibleError(ReproError):
    """Raised when an optimization problem has no feasible solution.

    Carries an optional human-readable ``reason`` explaining which constraint
    family made the instance infeasible (useful when sweeping constraint
    budgets in the experiment harness).
    """

    def __init__(self, message: str = "problem is infeasible", reason: str | None = None):
        super().__init__(message if reason is None else f"{message}: {reason}")
        self.reason = reason


class LintError(ReproError):
    """Raised when a lint gate finds error-severity diagnostics.

    ``model.solve(lint="error")`` raises this instead of handing a broken
    formulation to the solver. Carries the full :class:`~repro.analysis.
    diagnostics.LintReport` on ``report`` so callers can render or
    serialize the findings.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class SolverError(ReproError):
    """Raised when a solver fails for a reason other than infeasibility.

    Examples: iteration/node limits exhausted before proving optimality when
    the caller demanded an exact answer, or numerical breakdown in the
    simplex basis factorization.
    """


class TransientSolverError(SolverError):
    """A solver failure worth retrying.

    Raised by backends for conditions that may clear on a re-run — a worker
    process dying, a flaky external backend, resource exhaustion. The
    resilient solve path (:class:`~repro.obs.SolvePolicy` with
    ``max_retries > 0``) retries these with exponential backoff; every
    other :class:`SolverError` is treated as permanent and propagates.
    """
