"""Plain-text charts for figure experiments.

The paper's figures are line charts; the experiment harness reproduces them
as tables plus these ASCII renderings so the *shape* (staircases, knees,
frontiers) is visible directly in a terminal or CI log without any plotting
dependency.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.util.errors import ValidationError

Point = tuple[float, float]


def _bounds(values: Sequence[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        pad = abs(lo) * 0.05 + 1.0
        return lo - pad, hi + pad
    return lo, hi


def ascii_chart(
    series: dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Series are marked ``o``, ``x``, ``+``, ... in insertion order (names can
    share prefixes, so first letters would collide); cells hit by several
    series render ``*``. Axes are annotated with the data ranges. Series may
    have different x grids (the figure sweeps do).
    """
    if width < 10 or height < 4:
        raise ValidationError(f"chart needs width >= 10 and height >= 4, got {width}x{height}")
    points = [(x, y) for s in series.values() for x, y in s]
    if not points:
        return "(no data)"
    x_lo, x_hi = _bounds([p[0] for p in points])
    y_lo, y_hi = _bounds([p[1] for p in points])

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        row = height - 1 - row  # screen coordinates grow downward
        current = grid[row][col]
        grid[row][col] = mark if current in (" ", mark) else "*"

    marks = "ox+#@%&="
    mark_of = {name: marks[i % len(marks)] for i, name in enumerate(series)}
    for name, data in series.items():
        for x, y in data:
            place(x, y, mark_of[name])

    lines = [f"{y_label}: {y_lo:g} .. {y_hi:g}"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}: {x_lo:g} .. {x_hi:g}")
    if len(series) > 1:
        legend = ", ".join(f"{mark_of[name]} = {name}" for name in series)
        lines.append(f"legend: {legend} (* = overlap)")
    return "\n".join(lines)


def staircase(points: Sequence[Point]) -> list[Point]:
    """Expand sweep samples into step points for faithful staircase charts.

    Budget sweeps are piecewise constant: the value holds from one change
    point to the next. Inserting the corner points makes the ASCII chart
    show flats instead of misleading diagonals.
    """
    ordered = sorted(points)
    out: list[Point] = []
    for (x0, y0), (x1, _) in zip(ordered, ordered[1:]):
        out.append((x0, y0))
        out.append((x1, y0))
    if ordered:
        out.append(ordered[-1])
    return out
