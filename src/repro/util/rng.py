"""Seeded randomness plumbing.

Every stochastic component in the library (synthetic SOC generation, the
simulated-annealing placer and baseline, randomized LP tests) takes either a
seed or a ``numpy.random.Generator``. Centralizing the coercion here keeps
experiments reproducible: the harness passes integers, library code passes
generators through unchanged.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-seeded generator; an ``int`` yields a
    deterministic PCG64 stream; an existing generator is returned as-is so
    callers can thread one stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are derived via ``spawn`` on the underlying bit generator seed
    sequence, so two children never produce correlated streams even when the
    parent is used afterwards.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seed_seq = rng.bit_generator.seed_seq
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
