"""Content-addressed memoization of ILP solves.

The sweeps behind the evaluation re-solve many identical instances: the
width staircase revisits (W, NB) cells, the dual width-minimization binary
search re-probes architectures, and every warm re-run of an experiment
repeats the whole grid. A :class:`SolutionCache` keys each solve by a
canonical content hash of the model's :class:`~repro.ilp.model.MatrixForm`
plus the backend and its options, so a cache hit is guaranteed to be the
*same mathematical instance* solved the same way — the memoized
:class:`~repro.ilp.solution.Solution` is returned bit-identical, flagged
with ``cache_hit=True``.

Why the key is sound (see DESIGN.md §7):

- the hash covers every array that defines the instance — objective ``c``
  and offset ``c0``, both constraint blocks with their right-hand sides,
  variable bounds, and the integrality mask — as exact float64 bytes, no
  tolerance or rounding;
- inequality and equality rows are sorted into a canonical order together
  with their right-hand sides before hashing, so two models that state the
  same constraints in a different order collide onto one key (row order
  never changes the feasible set);
- backend and solver options (``gap_tol``, policy effort budgets, warm
  starts …) are part of the key, canonicalized through the shared
  ``cache_token()`` protocol (:mod:`repro.runtime.fingerprint`): a
  different search configuration may legitimately return a different
  (equally optimal) vertex, so it must never alias.

Storage is a two-level hierarchy: an in-memory LRU (per process) in front
of an optional on-disk JSON store under ``directory`` (conventionally
``.repro-cache/``) that persists across runs and is shared by parallel
worker processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from repro.ilp.solution import Solution, SolveStats, Status
from repro.runtime.fingerprint import cache_token_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model imports us lazily)
    from repro.ilp.model import MatrixForm, Model

#: Conventional on-disk store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Cache format version; bump when the record layout or key derivation
#: changes so stale stores are ignored rather than misread. v2: solver fast
#: path (presolve + pseudocost branching) — objectives are unchanged but
#: tie-broken assignments and the persisted work counters may differ, so
#: records written by the v1 solver are not replayed. v3: branch-and-cut —
#: new persisted cut counters (cut_rounds/clique_cuts/cover_cuts/
#: cuts_dropped) and cut-dependent tie-broken assignments. v4: root
# presolve + warm-started node LPs — new persisted presolve/warm counters
# and reduction-dependent tie-broken assignments.
_FORMAT_VERSION = 4

#: SolveStats fields persisted with a record (work counters of the original
#: solve, kept so a cached solution still reports its provenance).
_STATS_FIELDS = (
    "nodes",
    "lp_solves",
    "lp_iterations",
    "wall_time",
    "lp_time",
    "incumbent_updates",
    "best_bound",
    "gap",
    "cuts",
    "cut_rounds",
    "clique_cuts",
    "cover_cuts",
    "cuts_dropped",
    "retries",
    "presolve_fixings",
    "presolve_pruned",
    "pseudocost_branches",
    "root_presolve_rounds",
    "root_cols_removed",
    "root_rows_removed",
    "root_coeffs_tightened",
    "warm_lp_solves",
    "warm_lp_fallbacks",
)


def _hash_array(h: "hashlib._Hash", label: str, array: np.ndarray) -> None:
    arr = np.ascontiguousarray(np.asarray(array, dtype=np.float64))
    h.update(label.encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())


def _canonical_rows(a: np.ndarray, b: np.ndarray, num_vars: int) -> np.ndarray:
    """Stack ``[A | b]`` and sort rows lexicographically (canonical order)."""
    if len(b) == 0:
        return np.zeros((0, num_vars + 1))
    rows = np.hstack([
        np.asarray(a, dtype=np.float64),
        np.asarray(b, dtype=np.float64).reshape(-1, 1),
    ])
    # lexsort keys run last-to-first; reverse the columns so column 0 is the
    # primary sort key.
    order = np.lexsort(rows.T[::-1])
    return rows[order]


def matrix_fingerprint(form: "MatrixForm") -> str:
    """Canonical sha256 content hash of a matrix-form instance.

    Invariant under constraint row order; sensitive to every coefficient,
    bound, right-hand side, and the integrality mask at full float64
    precision.
    """
    h = hashlib.sha256()
    h.update(f"repro-matrix-v{_FORMAT_VERSION}".encode())
    _hash_array(h, "c", form.c)
    _hash_array(h, "c0", np.array([form.c0]))
    _hash_array(h, "ub", _canonical_rows(form.a_ub, form.b_ub, form.num_vars))
    _hash_array(h, "eq", _canonical_rows(form.a_eq, form.b_eq, form.num_vars))
    _hash_array(h, "lb", form.lb)
    _hash_array(h, "vub", form.ub)
    _hash_array(h, "int", form.integer_mask.astype(np.float64))
    return h.hexdigest()


def solve_fingerprint(
    form: "MatrixForm",
    backend: str = "bnb",
    options: Mapping[str, Any] | None = None,
    namespace: str | None = None,
) -> str:
    """Cache key for one solve: instance content + backend + options.

    Option values canonicalize through the shared ``cache_token()`` protocol
    (:func:`repro.runtime.fingerprint.cache_token_of`): an option exposing
    ``cache_token()`` — a :class:`~repro.obs.SolvePolicy`, a
    :class:`~repro.core.request.SolveRequest` — names its own
    result-affecting fields; everything else reduces to deterministic text.
    ``namespace`` partitions the key space per tenant: the same instance
    solved under two namespaces never shares a record.
    """
    parts = [matrix_fingerprint(form), f"backend={backend}"]
    if namespace is not None:
        parts.append(f"namespace={namespace}")
    for key in sorted(options or {}):
        parts.append(f"{key}={cache_token_of(options[key])}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


@dataclass(frozen=True)
class CacheRecord:
    """The portable payload of one memoized solve.

    Values are stored by column index (not by :class:`Variable`), so a
    record can be rebound to any structurally identical model — including
    one rebuilt in a different process.
    """

    status: str
    objective: float | None
    values: tuple[float, ...]
    backend: str
    stats: dict[str, Any]

    @classmethod
    def from_solution(cls, solution: Solution, num_vars: int) -> "CacheRecord":
        values: tuple[float, ...] = ()
        if solution.values:
            dense = [0.0] * num_vars
            for var, val in solution.values.items():
                dense[var.index] = float(val)
            values = tuple(dense)
        stats = {name: getattr(solution.stats, name) for name in _STATS_FIELDS}
        return cls(
            status=solution.status.value,
            objective=solution.objective,
            values=values,
            backend=solution.backend,
            stats=stats,
        )

    def to_solution(self, model: "Model") -> Solution:
        status = Status(self.status)
        values = {}
        if self.values:
            if len(self.values) != model.num_vars:
                raise ValueError(
                    f"cached record has {len(self.values)} values but the model "
                    f"has {model.num_vars} variables"
                )
            values = {var: self.values[var.index] for var in model.variables}
        stats = SolveStats(**{k: v for k, v in self.stats.items() if k in _STATS_FIELDS})
        stats.cache_hit = True
        return Solution(
            status,
            objective=self.objective,
            values=values,
            stats=stats,
            backend=self.backend,
            cache_hit=True,
        )

    def to_json(self) -> dict[str, Any]:
        payload = asdict(self)
        payload["version"] = _FORMAT_VERSION
        payload["values"] = list(self.values)
        return payload

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "CacheRecord":
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported cache record version {payload.get('version')!r}")
        return cls(
            status=str(payload["status"]),
            objective=None if payload["objective"] is None else float(payload["objective"]),
            values=tuple(float(v) for v in payload["values"]),
            backend=str(payload["backend"]),
            stats=dict(payload["stats"]),
        )


class SolutionCache:
    """Two-level (memory LRU + optional disk) store of memoized solves.

    Parameters
    ----------
    maxsize:
        In-memory LRU capacity in records; the disk store is unbounded.
    directory:
        On-disk store root, or None for memory-only. Created lazily on the
        first write.
    namespace:
        Optional tenant namespace. Namespaced caches never alias: the
        namespace is folded into every fingerprint and the on-disk records
        live under ``directory/<namespace>/``, so one tenant's records can
        be purged (or quota'd) without touching another's. The service
        layer gives each tenant its own namespaced cache over one shared
        store root.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        directory: str | os.PathLike | None = None,
        namespace: str | None = None,
    ):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        if namespace is not None and (
            not namespace or not all(c.isalnum() or c in "._-" for c in namespace)
        ):
            raise ValueError(
                f"namespace must be non-empty [A-Za-z0-9._-] text, got {namespace!r}"
            )
        self.maxsize = maxsize
        self.directory = Path(directory) if directory is not None else None
        self.namespace = namespace
        self._memory: OrderedDict[str, CacheRecord] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------ keys
    def fingerprint(
        self, form: "MatrixForm", backend: str = "bnb", options: Mapping[str, Any] | None = None
    ) -> str:
        return solve_fingerprint(
            form, backend=backend, options=options, namespace=self.namespace
        )

    # ----------------------------------------------------------------- store
    def _path_for(self, key: str) -> Path:
        assert self.directory is not None
        root = self.directory if self.namespace is None else self.directory / self.namespace
        return root / f"{key}.json"

    def _remember(self, key: str, record: CacheRecord) -> None:
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def lookup(self, key: str) -> CacheRecord | None:
        """Fetch a record by key (memory first, then disk); counts hit/miss."""
        from repro.obs import get_metrics

        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            get_metrics().counter("cache.hits").inc()
            return record
        if self.directory is not None:
            path = self._path_for(key)
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                record = CacheRecord.from_json(payload)
            except (OSError, ValueError, KeyError):
                record = None  # absent or corrupt on-disk entry -> miss
            if record is not None:
                self._remember(key, record)
                self.hits += 1
                get_metrics().counter("cache.hits").inc()
                return record
        self.misses += 1
        get_metrics().counter("cache.misses").inc()
        return None

    def store(self, key: str, record: CacheRecord) -> None:
        """Insert a record in memory and (when configured) on disk."""
        self._remember(key, record)
        self.stores += 1
        if self.directory is not None:
            path = self._path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so parallel workers never read a torn file.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record.to_json(), handle)
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass

    # ------------------------------------------------------------- solutions
    def get_solution(self, key: str, model: "Model") -> Solution | None:
        """Return the memoized solution rebound to ``model``, or None."""
        record = self.lookup(key)
        if record is None:
            return None
        try:
            return record.to_solution(model)
        except ValueError:
            # Structurally incompatible record (should be unreachable given
            # the content hash); treat as a miss rather than corrupt a run.
            self.hits -= 1
            self.misses += 1
            return None

    def put_solution(self, key: str, solution: Solution, num_vars: int) -> None:
        self.store(key, CacheRecord.from_solution(solution, num_vars))

    # --------------------------------------------------------------- utility
    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory LRU; with ``disk=True`` also the on-disk store.

        A namespaced cache only ever clears its own ``directory/<namespace>/``
        records — tenant isolation holds for purges, not just lookups.
        """
        self._memory.clear()
        if disk and self.directory is not None:
            root = (
                self.directory if self.namespace is None else self.directory / self.namespace
            )
            if root.exists():
                for path in root.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        return len(self._memory)

    def stats_summary(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def __repr__(self) -> str:
        where = f"disk={self.directory}" if self.directory else "memory-only"
        return (
            f"SolutionCache({len(self._memory)}/{self.maxsize} in memory, {where}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# --------------------------------------------------------------- active cache
#: Active cache consulted by ``Model.solve``; None disables memoization
#: entirely (the seed behavior). A ContextVar rather than a module global so
#: concurrent service workers can each hold a different tenant's namespaced
#: cache: every thread (and asyncio task) sees only its own installation.
_ACTIVE_CACHE: ContextVar[SolutionCache | None] = ContextVar(
    "repro_active_solve_cache", default=None
)


def set_solve_cache(cache: SolutionCache | None) -> SolutionCache | None:
    """Install ``cache`` as the active solve cache; returns the previous.

    Scoped to the current thread/task context — a fresh thread starts with
    no active cache regardless of what its parent installed.
    """
    previous = _ACTIVE_CACHE.get()
    _ACTIVE_CACHE.set(cache)
    return previous


def get_solve_cache() -> SolutionCache | None:
    """The currently active solve cache, or None."""
    return _ACTIVE_CACHE.get()


@contextmanager
def use_cache(cache: SolutionCache | None) -> Iterator[SolutionCache | None]:
    """Scope ``cache`` as the active solve cache for a ``with`` block."""
    previous = set_solve_cache(cache)
    try:
        yield cache
    finally:
        set_solve_cache(previous)


def resolve_cache(cache: "SolutionCache | bool | None") -> SolutionCache | None:
    """Normalize a ``Model.solve(cache=...)`` argument to a cache or None.

    ``None`` defers to the active context cache, ``False`` disables caching
    for this solve, a :class:`SolutionCache` is used directly.
    """
    if cache is None:
        return get_solve_cache()
    if cache is False:
        return None
    if isinstance(cache, SolutionCache):
        return cache
    raise TypeError(f"cache must be a SolutionCache, False, or None; got {type(cache).__name__}")


def solve_cached(model: "Model", backend: str = "bnb", cache: SolutionCache | None = None, **options):
    """Solve ``model`` through a cache (the facade's blessed entry point).

    Uses ``cache`` when given, else the active context cache, else a lazily
    created process-wide in-memory cache — so repeated identical solves in
    one session are always memoized.
    """
    target = cache if cache is not None else get_solve_cache()
    if target is None:
        target = _default_cache()
    return model.solve(backend=backend, cache=target, **options)


_DEFAULT_CACHE: SolutionCache | None = None


def _default_cache() -> SolutionCache:
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = SolutionCache()
    return _DEFAULT_CACHE
