"""The shared ``cache_token()`` protocol: one canonicalizer for key material.

Every value that participates in a cache key — solver options, a
:class:`~repro.obs.SolvePolicy`, a :class:`~repro.core.request.SolveRequest`
— reduces to deterministic text through :func:`cache_token_of`:

- an object exposing a callable ``cache_token()`` is asked for its own
  canonical text (the protocol; ``SolvePolicy`` and ``SolveRequest``
  implement it over exactly their result-affecting fields);
- mappings canonicalize entry-by-entry in sorted key order (warm starts map
  ``Variable -> value`` and are keyed by column index);
- sequences canonicalize element-wise, preserving order;
- floats use ``repr`` (full precision, no locale), everything else falls
  back to ``repr``.

Centralizing this here (instead of an ad-hoc branch inside the solve-cache
key builder) means any new request- or policy-shaped object joins the cache
key the same way: implement ``cache_token()`` and every fingerprint in the
system — the solve cache, the service dedupe map, the checkpoint store —
agrees on its identity. Flow rule D001 audits that the protocol is honored
wherever fingerprints are computed.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

__all__ = ["cache_token_of", "token_digest"]


def cache_token_of(value: Any) -> str:
    """Deterministic canonical text of one piece of cache-key material."""
    token = getattr(value, "cache_token", None)
    if callable(token):
        # The protocol: the object names its own result-affecting fields
        # canonically; repr() would also drag in settings (retry counts,
        # fallback ladders) that never change what a solve returns.
        return str(token())
    if isinstance(value, Mapping):
        items = []
        for key, val in value.items():
            index = getattr(key, "index", key)
            items.append((repr(index), cache_token_of(val)))
        return "{" + ",".join(f"{k}:{v}" for k, v in sorted(items)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(cache_token_of(v) for v in value) + "]"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def token_digest(*parts: str) -> str:
    """sha256 digest of canonical token parts joined unambiguously."""
    return hashlib.sha256("|".join(parts).encode()).hexdigest()
