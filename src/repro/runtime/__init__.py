"""Solve runtime: persistent solution caching, parallel fan-out, telemetry.

The experiment harnesses sweep (SOC, width, power-cap) grids that re-solve
many identical ILP instances; this subsystem makes those sweeps fast without
changing a single answer:

- :mod:`repro.runtime.cache` — content-addressed memoization of
  ``model.solve`` results. The key is a canonical hash of the matrix form
  (coefficients, bounds, integrality, objective) plus the backend and its
  options, so a hit is *provably* the same instance. In-memory LRU plus an
  optional on-disk store (default ``.repro-cache/``) that survives runs.
- :mod:`repro.runtime.parallel` — :func:`run_parallel` fans independent
  sweep points across a ``ProcessPoolExecutor`` while preserving result
  ordering; ``max_workers=1`` is a deterministic serial fallback that runs
  in-process.
- :mod:`repro.runtime.telemetry` — :class:`RunTelemetry` aggregates the
  per-solve :class:`~repro.ilp.solution.SolveStats` records (nodes, LP
  iterations, wall time, cache hits) for reports and ``--json`` output.
- :mod:`repro.runtime.portfolio` — :func:`run_portfolio` races exact B&B
  against the heuristic ladder under one shared
  :class:`~repro.obs.SolvePolicy` budget, cross-feeding the best heuristic
  incumbent to the exact search as its starting cutoff.
"""

from repro.runtime.cache import (
    DEFAULT_CACHE_DIR,
    SolutionCache,
    get_solve_cache,
    matrix_fingerprint,
    set_solve_cache,
    solve_cached,
    solve_fingerprint,
    use_cache,
)
from repro.runtime.fingerprint import cache_token_of, token_digest
from repro.runtime.parallel import run_parallel
from repro.runtime.portfolio import EntrantRecord, PortfolioReport, run_portfolio
from repro.runtime.telemetry import RunTelemetry

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EntrantRecord",
    "PortfolioReport",
    "SolutionCache",
    "RunTelemetry",
    "cache_token_of",
    "get_solve_cache",
    "matrix_fingerprint",
    "run_parallel",
    "run_portfolio",
    "set_solve_cache",
    "solve_cached",
    "solve_fingerprint",
    "token_digest",
    "use_cache",
]
