"""Aggregated solver telemetry for experiment runs and reports.

Every backend returns a per-solve :class:`~repro.ilp.solution.SolveStats`;
:class:`RunTelemetry` folds those into run-level counters — how many solves
a harness issued, how many were answered from the cache, and how much
branch-and-bound / LP work the fresh ones cost. Experiment results carry one
instance, rendered as a one-line footer and exported through the CLI's
``--json`` output.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.ilp.solution import SolveStats


@dataclass
class RunTelemetry:
    """Run-level roll-up of solver work.

    ``nodes`` / ``lp_solves`` / ``lp_iterations`` / ``incumbent_updates`` /
    ``wall_time`` count only *fresh* solves — a cache hit re-reports the
    original solve's counters on its own :class:`SolveStats`, but folding
    them in again would double-count work that never re-ran.
    """

    solves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    nodes: int = 0
    lp_solves: int = 0
    lp_iterations: int = 0
    incumbent_updates: int = 0
    presolve_fixings: int = 0
    presolve_pruned: int = 0
    cuts: int = 0
    root_cols_removed: int = 0
    root_rows_removed: int = 0
    warm_lp_solves: int = 0
    warm_lp_fallbacks: int = 0
    wall_time: float = 0.0
    jobs: int = 1
    retries: int = 0
    fallbacks: int = 0
    portfolio_runs: int = 0
    portfolio_heuristic_wins: int = 0
    portfolio_cross_fed: int = 0

    def record(self, stats: SolveStats) -> None:
        """Fold one solve's stats into the run counters."""
        self.solves += 1
        if stats.cache_hit:
            self.cache_hits += 1
            return
        self.cache_misses += 1
        self.nodes += stats.nodes
        self.lp_solves += stats.lp_solves
        self.lp_iterations += stats.lp_iterations
        self.incumbent_updates += stats.incumbent_updates
        self.presolve_fixings += stats.presolve_fixings
        self.presolve_pruned += stats.presolve_pruned
        self.cuts += stats.cuts
        self.root_cols_removed += stats.root_cols_removed
        self.root_rows_removed += stats.root_rows_removed
        self.warm_lp_solves += stats.warm_lp_solves
        self.warm_lp_fallbacks += stats.warm_lp_fallbacks
        self.wall_time += stats.wall_time
        self.retries += stats.retries

    def record_fallback(self, report) -> None:
        """Count one degraded design (see :class:`repro.obs.FallbackReport`).

        ``retries`` on the report are already folded in via the solve's
        :class:`SolveStats`; only the degradation itself is new signal.
        """
        if report is not None and getattr(report, "degraded", False):
            self.fallbacks += 1

    def record_portfolio(self, report) -> None:
        """Count one portfolio race (see
        :class:`repro.runtime.portfolio.PortfolioReport`): the race itself,
        whether a heuristic entrant won the attribution, and whether an
        incumbent was cross-fed to the exact search."""
        if report is None:
            return
        self.portfolio_runs += 1
        if getattr(report, "winner", "bnb") != "bnb":
            self.portfolio_heuristic_wins += 1
        if getattr(report, "cross_fed", False):
            self.portfolio_cross_fed += 1

    def merge(self, other: "RunTelemetry | None") -> None:
        """Fold another run's counters into this one (``jobs`` keeps ours)."""
        if other is None:
            return
        self.solves += other.solves
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.nodes += other.nodes
        self.lp_solves += other.lp_solves
        self.lp_iterations += other.lp_iterations
        self.incumbent_updates += other.incumbent_updates
        self.presolve_fixings += other.presolve_fixings
        self.presolve_pruned += other.presolve_pruned
        self.cuts += other.cuts
        self.root_cols_removed += other.root_cols_removed
        self.root_rows_removed += other.root_rows_removed
        self.warm_lp_solves += other.warm_lp_solves
        self.warm_lp_fallbacks += other.warm_lp_fallbacks
        self.wall_time += other.wall_time
        self.retries += other.retries
        self.fallbacks += other.fallbacks
        self.portfolio_runs += other.portfolio_runs
        self.portfolio_heuristic_wins += other.portfolio_heuristic_wins
        self.portfolio_cross_fed += other.portfolio_cross_fed

    def as_dict(self) -> dict:
        return asdict(self)

    def counts(self) -> dict:
        """The deterministic, worker-count-invariant counters only.

        ``wall_time`` is excluded on purpose: it is the one field that
        varies run to run, so parallel-equivalence checks compare this view.
        """
        payload = asdict(self)
        payload.pop("wall_time")
        payload.pop("jobs")
        return payload

    def render(self) -> str:
        """One-line summary for report footers."""
        line = (
            f"{self.solves} solves ({self.cache_hits} cached), "
            f"{self.nodes} B&B nodes, {self.lp_solves} LPs, "
            f"{self.wall_time:.2f}s solver wall, jobs={self.jobs}"
        )
        if self.retries:
            line += f", {self.retries} retries"
        if self.fallbacks:
            line += f", {self.fallbacks} fallbacks"
        if self.portfolio_runs:
            line += f", {self.portfolio_runs} portfolio races"
        return line
