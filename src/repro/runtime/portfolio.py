"""Racing solver portfolio: exact B&B vs the heuristic ladder, one budget.

:func:`run_portfolio` races the entrants named by a
:class:`~repro.obs.PortfolioPolicy` on one :class:`DesignProblem` under a
single shared :class:`~repro.obs.SolvePolicy` budget:

1. the heuristic rungs (``"lpt"``, ``"sa"``) run first — concurrently on
   the persistent process pool (:func:`repro.runtime.parallel.run_parallel`)
   when ``policy.jobs > 1``;
2. their best incumbent is *cross-fed* to the exact ``"bnb"`` entrant as
   its starting cutoff (the same warm-start channel
   ``design(warm_start_heuristic=True)`` uses), with the wall time the
   heuristics already spent subtracted from the shared deadline;
3. the best solution wins. Ties go to the heuristic that produced the
   incumbent — B&B then merely supplied the optimality proof.

The combined answer is a normal :class:`~repro.core.designer.TamDesign`
whose ``portfolio`` field carries a :class:`PortfolioReport`: the winner,
per-entrant wall / nodes / bound, whether an incumbent was cross-fed, and
the final optimality gap. Heuristic-only portfolios (no ``"bnb"`` entrant)
still report a *certified* gap against the instance's combinatorial lower
bound — ``max(max_i min_j t_ij, sum_i min_j t_ij / NB)`` — so the scaling
trajectory (``benchmarks/bench_scale.py``) can compare legs honestly.

Pool purity (lint rule D002): the worker submitted to the process pool,
:func:`_run_heuristic_entrant`, is a pure top-level function of its payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs import FallbackReport, PortfolioPolicy, SolvePolicy, now, span
from repro.runtime.parallel import run_parallel
from repro.util.errors import InfeasibleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (designer imports runtime)
    from repro.core.designer import TamDesign
    from repro.core.problem import DesignProblem

__all__ = ["EntrantRecord", "PortfolioReport", "run_portfolio"]

#: Floor on the exact entrant's share of a shared deadline: even when the
#: heuristics ate the whole budget, B&B gets enough wall to install the
#: cross-fed incumbent and try one root bound.
MIN_EXACT_BUDGET = 0.05


@dataclass(frozen=True)
class EntrantRecord:
    """One entrant's run inside a portfolio race."""

    name: str
    status: str
    makespan: float | None
    wall_time: float
    nodes: int = 0
    best_bound: float | None = None
    detail: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "makespan": self.makespan,
            "wall_time": self.wall_time,
            "nodes": self.nodes,
            "best_bound": self.best_bound,
            "detail": self.detail,
        }


@dataclass
class PortfolioReport:
    """Provenance of a portfolio race: who ran, who fed whom, who won.

    ``winner`` is the entrant whose solution the combined design returns —
    on a makespan tie between a heuristic incumbent and the exact search
    the heuristic wins the attribution (B&B provided the proof, not the
    solution). ``cross_fed`` records whether a heuristic incumbent was
    installed as the exact entrant's starting cutoff, and
    ``shared_deadline`` the wall budget the whole race shared (``None``
    when the policy set none). ``gap`` is the relative optimality gap of
    the returned solution against the best known lower bound — exact
    entrant's tree bound when it ran, the certified combinatorial bound
    otherwise.
    """

    winner: str
    gap: float | None
    best_bound: float | None
    cross_fed: bool
    shared_deadline: float | None
    wall_time: float
    entrants: list[EntrantRecord] = field(default_factory=list)

    def entrant(self, name: str) -> EntrantRecord | None:
        for record in self.entrants:
            if record.name == name:
                return record
        return None

    def as_dict(self) -> dict[str, Any]:
        return {
            "winner": self.winner,
            "gap": self.gap,
            "best_bound": self.best_bound,
            "cross_fed": self.cross_fed,
            "shared_deadline": self.shared_deadline,
            "wall_time": self.wall_time,
            "entrants": [record.as_dict() for record in self.entrants],
        }

    def render(self) -> str:
        parts = []
        for record in self.entrants:
            bits = f"{record.name}={record.status}"
            if record.makespan is not None:
                bits += f"@{record.makespan:g}"
            if record.nodes:
                bits += f",{record.nodes}n"
            parts.append(bits)
        feed = "cross-fed" if self.cross_fed else "cold"
        gap = "?" if self.gap is None else f"{self.gap:.3%}"
        return f"portfolio[{' | '.join(parts)}] -> {self.winner} ({feed}, gap={gap})"


def _run_heuristic_entrant(payload: tuple) -> dict[str, Any]:
    """Run one heuristic rung on one problem (process-pool worker).

    Pure top-level function of its payload (D002): returns a plain dict so
    the result pickles cheaply across the pool boundary.
    """
    problem, rung, seed, sa_iterations = payload
    from repro.core.baselines import lpt_assignment, simulated_annealing

    start = now()
    try:
        if rung == "lpt":
            result = lpt_assignment(problem)
        elif rung == "sa":
            result = simulated_annealing(problem, seed=seed, iterations=sa_iterations)
        else:  # pragma: no cover - PortfolioPolicy validates entrant names
            raise ValueError(f"unknown heuristic entrant {rung!r}")
    except InfeasibleError as exc:
        return {
            "name": rung,
            "status": "infeasible",
            "makespan": None,
            "wall_time": now() - start,
            "bus_of": None,
            "detail": str(exc),
        }
    return {
        "name": rung,
        "status": "feasible",
        "makespan": result.makespan,
        "wall_time": result.wall_time,
        "bus_of": list(result.assignment.bus_of),
        "detail": None,
    }


def _certified_lower_bound(problem: "DesignProblem") -> float:
    """Instance lower bound no assignment can beat (cheap, certified).

    ``max_i min_j t_ij`` — some bus must run each core at least at its best
    time — and ``sum_i min_j t_ij / NB`` — total best-case work spread over
    all buses. The same bounds :func:`design_best_architecture` prunes with.
    """
    import numpy as np

    per_core_best = np.min(problem.times, axis=1)
    singleton = float(np.max(per_core_best))
    spread = float(np.sum(per_core_best)) / problem.arch.num_buses
    return max(singleton, spread)


def run_portfolio(
    problem: "DesignProblem",
    policy: SolvePolicy,
    cache: "object | bool | None" = None,
    wirelength_method: str = "chain",
    **solver_options,
) -> "TamDesign":
    """Race the portfolio entrants on ``problem`` under one shared budget.

    ``policy.solver.portfolio`` must be an enabled
    :class:`~repro.obs.PortfolioPolicy`; :func:`repro.core.designer.design`
    dispatches here automatically when it is. The returned
    :class:`~repro.core.designer.TamDesign` carries a
    :class:`PortfolioReport` in its ``portfolio`` field.

    Budget sharing: heuristic wall time is subtracted from
    ``policy.deadline`` before the exact entrant starts (floored at
    :data:`MIN_EXACT_BUDGET` so a cross-fed incumbent can always be
    installed); ``policy.node_budget`` applies to the exact entrant
    unchanged — heuristics do not expand B&B nodes.
    """
    from repro.core.designer import design
    from repro.ilp.solution import SolveStats, Status
    from repro.layout.routing import tam_wirelength
    from repro.tam.assignment import Assignment

    portfolio = policy.solver.portfolio if policy.solver is not None else None
    if portfolio is None or not portfolio.enabled:
        raise ValueError("run_portfolio needs a SolvePolicy with an enabled portfolio")

    start = now()
    records: list[EntrantRecord] = []

    # ---- leg 1: the heuristic rungs race (concurrently when jobs > 1) ----
    heuristics = portfolio.heuristics
    best_name: str | None = None
    best_makespan: float | None = None
    best_bus_of: list[int] | None = None
    if heuristics:
        payloads = [
            (problem, rung, portfolio.seed, portfolio.sa_iterations)
            for rung in heuristics
        ]
        with span("portfolio.heuristics", entrants=list(heuristics)):
            outcomes = run_parallel(
                _run_heuristic_entrant, payloads, max_workers=portfolio.jobs
            )
        for outcome in outcomes:
            records.append(
                EntrantRecord(
                    name=outcome["name"],
                    status=outcome["status"],
                    makespan=outcome["makespan"],
                    wall_time=outcome["wall_time"],
                    detail=outcome["detail"],
                )
            )
            if outcome["status"] != "feasible":
                continue
            if best_makespan is None or outcome["makespan"] < best_makespan - 1e-9:
                best_name = outcome["name"]
                best_makespan = outcome["makespan"]
                best_bus_of = outcome["bus_of"]

    # ---- leg 2: exact B&B, cross-fed the incumbent as its cutoff ----
    if portfolio.exact:
        elapsed = now() - start
        remaining = None
        if policy.deadline is not None:
            remaining = max(policy.deadline - elapsed, MIN_EXACT_BUDGET)
        inner_policy = policy.with_overrides(
            solver=policy.solver.with_overrides(portfolio=None),
            deadline=remaining,
        )
        incumbent = None
        if best_bus_of is not None:
            incumbent = Assignment(problem.soc, problem.arch, tuple(best_bus_of))
        with span("portfolio.exact", cross_fed=incumbent is not None):
            combined = design(
                problem,
                backend="bnb",
                wirelength_method=wirelength_method,
                cache=cache,
                policy=inner_policy,
                incumbent=incumbent,
                **solver_options,
            )
        stats = combined.stats
        records.append(
            EntrantRecord(
                name="bnb",
                status=combined.status.value,
                makespan=combined.makespan,
                wall_time=stats.wall_time,
                nodes=stats.nodes,
                best_bound=stats.best_bound,
            )
        )
        if best_makespan is not None and combined.makespan < best_makespan - 1e-9:
            winner = "bnb"
        elif best_name is not None:
            winner = best_name  # tie: the heuristic found it, B&B proved it
        else:
            winner = "bnb"
        gap = stats.gap
        if combined.status is Status.OPTIMAL:
            gap = 0.0
        elif gap is None and stats.best_bound is not None and combined.makespan:
            gap = max(0.0, (combined.makespan - stats.best_bound) / combined.makespan)
        combined.portfolio = PortfolioReport(
            winner=winner,
            gap=gap,
            best_bound=stats.best_bound,
            cross_fed=incumbent is not None,
            shared_deadline=policy.deadline,
            wall_time=now() - start,
            entrants=records,
        )
        return combined

    # ---- heuristic-only portfolio: certify the gap against the LB ----
    if best_bus_of is None or best_name is None or best_makespan is None:
        raise InfeasibleError(
            "no portfolio entrant found a feasible assignment for "
            f"{problem.constraint_summary()}",
            reason="; ".join(
                f"{record.name}: {record.detail or record.status}" for record in records
            ),
        )
    assignment = Assignment(problem.soc, problem.arch, tuple(best_bus_of))
    bus_times = assignment.bus_times(problem.timing)
    makespan = max(bus_times)
    wirelength = None
    if problem.floorplan is not None:
        wirelength = tam_wirelength(problem.floorplan, assignment, method=wirelength_method)
    bound = _certified_lower_bound(problem)
    gap = max(0.0, (makespan - bound) / makespan) if makespan else 0.0
    total_wall = now() - start
    report = FallbackReport(source=best_name, reason="heuristic-only portfolio")
    for record in records:
        report.record_step(record.name, record.status, makespan=record.makespan)
    from repro.core.designer import TamDesign as _TamDesign

    design_result = _TamDesign(
        problem=problem,
        assignment=assignment,
        makespan=makespan,
        bus_times=bus_times,
        status=Status.FEASIBLE,
        stats=SolveStats(wall_time=total_wall, best_bound=bound, gap=gap),
        backend="portfolio",
        wirelength=wirelength,
        fallback=report,
        portfolio=PortfolioReport(
            winner=best_name,
            gap=gap,
            best_bound=bound,
            cross_fed=False,
            shared_deadline=policy.deadline,
            wall_time=total_wall,
            entrants=records,
        ),
    )
    return design_result
