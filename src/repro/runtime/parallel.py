"""Order-preserving parallel fan-out for sweep workloads.

Experiment harnesses iterate independent sweep points — (W, NB) budgets,
power caps, synthetic sizes — and each point is a self-contained batch of
exact solves. :func:`run_parallel` maps a worker function over those points
with a ``ProcessPoolExecutor`` while keeping three guarantees the harnesses
rely on:

- **result ordering**: outputs line up with inputs regardless of which
  worker finishes first, so the rendered tables are byte-identical to a
  serial run;
- **deterministic serial fallback**: ``max_workers=1`` (the default) runs
  in-process with no executor at all — same code path the seed used;
- **seeded-RNG discipline** (lint rule C001): workers receive their inputs,
  including any seeds, explicitly through the payload; nothing samples
  process-global randomness.

Two throughput fixes over the original implementation (which lost to the
serial path on the benchmark grid, ``parallel_vs_serial_cold: 0.59``):

- **persistent pool** — the executor is created once per
  ``(workers, cache_dir)`` configuration and reused across calls, so a
  sweep harness that fans out repeatedly (width sweep, then power sweep,
  then bus-count exploration) pays process spawn + numpy/scipy import cost
  once, not per call;
- **chunked submission** — items are handed to workers in contiguous
  chunks instead of one future per item, cutting pickling/IPC round-trips
  while keeping result order (``executor.map`` preserves it per chunk).

Workers are separate processes, so the parent's in-memory solve cache is
not shared; when the active cache has an on-disk store, each worker attaches
to the same directory via the pool initializer and hits persist across the
whole fleet.
"""

from __future__ import annotations

import atexit
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.runtime.cache import SolutionCache, get_solve_cache, set_solve_cache

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")

_pool: ProcessPoolExecutor | None = None
_pool_key: tuple[int, str | None, str | None] | None = None


def _worker_init(cache_dir: str | None, namespace: str | None = None) -> None:
    """Pool initializer: attach each worker to the shared on-disk cache.

    ``namespace`` carries the parent cache's tenant namespace across the
    process boundary, so a namespaced sweep stays isolated in its workers.
    """
    if cache_dir is not None:
        set_solve_cache(SolutionCache(directory=cache_dir, namespace=namespace))


def resolve_workers(max_workers: int | None) -> int:
    """Normalize a worker-count request (None / 0 / negative = all cores)."""
    if max_workers is None or max_workers <= 0:
        return os.cpu_count() or 1
    return max_workers


def _get_pool(workers: int, init_dir: str | None, namespace: str | None) -> ProcessPoolExecutor:
    """Return the persistent pool for this configuration, creating it once.

    A configuration change (different worker count, cache directory, or
    tenant namespace) retires the old pool; sweeps alternating
    configurations are rare enough that one live pool is the right trade
    against idle worker processes.
    """
    global _pool, _pool_key
    key = (workers, init_dir, namespace)
    if _pool is not None and _pool_key == key:
        return _pool
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
    _pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(init_dir, namespace),
    )
    _pool_key = key
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (no-op when none is live).

    Registered via ``atexit`` for normal interpreter shutdown; tests and
    long-lived hosts may call it explicitly to reclaim worker processes.
    """
    global _pool, _pool_key
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_key = None


atexit.register(shutdown_pool)


def _chunksize(n_items: int, workers: int) -> int:
    """Chunk so each worker sees ~4 chunks: amortized IPC, tolerable skew."""
    return max(1, -(-n_items // (workers * 4)))


def run_parallel(
    fn: Callable[[_Item], _Result],
    items: Iterable[_Item],
    max_workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[_Result]:
    """Map ``fn`` over ``items``, preserving input order.

    ``fn`` must be a module-level callable and each item picklable (the
    contract of ``ProcessPoolExecutor``). With ``max_workers=1`` the map
    runs serially in-process — the deterministic fallback — and the active
    solve cache is used directly. With more workers, the call submits
    chunked work to a persistent process pool (reused across calls with the
    same worker count and cache directory); each worker process installs a
    :class:`SolutionCache` on ``cache_dir`` (defaulting to the active
    cache's directory, if it has one) so the fleet shares warm results
    through the filesystem.

    If the platform refuses to spawn processes (restricted sandboxes) or the
    pool dies mid-flight, the call degrades to the serial path with a
    warning rather than failing.
    """
    work: Sequence[_Item] = list(items)
    workers = resolve_workers(max_workers)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]

    namespace = None
    if cache_dir is None:
        active = get_solve_cache()
        if active is not None and active.directory is not None:
            cache_dir = active.directory
            namespace = active.namespace
    init_dir = str(cache_dir) if cache_dir is not None else None

    try:
        pool = _get_pool(workers, init_dir, namespace)
        return list(pool.map(fn, work, chunksize=_chunksize(len(work), workers)))
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        shutdown_pool()
        warnings.warn(
            f"parallel executor unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in work]
