"""Order-preserving parallel fan-out for sweep workloads.

Experiment harnesses iterate independent sweep points — (W, NB) budgets,
power caps, synthetic sizes — and each point is a self-contained batch of
exact solves. :func:`run_parallel` maps a worker function over those points
with a ``ProcessPoolExecutor`` while keeping three guarantees the harnesses
rely on:

- **result ordering**: outputs line up with inputs regardless of which
  worker finishes first, so the rendered tables are byte-identical to a
  serial run;
- **deterministic serial fallback**: ``max_workers=1`` (the default) runs
  in-process with no executor at all — same code path the seed used;
- **seeded-RNG discipline** (lint rule C001): workers receive their inputs,
  including any seeds, explicitly through the payload; nothing samples
  process-global randomness.

Workers are separate processes, so the parent's in-memory solve cache is
not shared; when the active cache has an on-disk store, each worker attaches
to the same directory via the pool initializer and hits persist across the
whole fleet.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.runtime.cache import SolutionCache, get_solve_cache, set_solve_cache

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


def _worker_init(cache_dir: str | None) -> None:
    """Pool initializer: attach each worker to the shared on-disk cache."""
    if cache_dir is not None:
        set_solve_cache(SolutionCache(directory=cache_dir))


def resolve_workers(max_workers: int | None) -> int:
    """Normalize a worker-count request (None / 0 / negative = all cores)."""
    if max_workers is None or max_workers <= 0:
        return os.cpu_count() or 1
    return max_workers


def run_parallel(
    fn: Callable[[_Item], _Result],
    items: Iterable[_Item],
    max_workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[_Result]:
    """Map ``fn`` over ``items``, preserving input order.

    ``fn`` must be a module-level callable and each item picklable (the
    contract of ``ProcessPoolExecutor``). With ``max_workers=1`` the map
    runs serially in-process — the deterministic fallback — and the active
    solve cache is used directly. With more workers, each worker process
    installs a :class:`SolutionCache` on ``cache_dir`` (defaulting to the
    active cache's directory, if it has one) so the fleet shares warm
    results through the filesystem.

    If the platform refuses to spawn processes (restricted sandboxes), the
    call degrades to the serial path with a warning rather than failing.
    """
    work: Sequence[_Item] = list(items)
    workers = resolve_workers(max_workers)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]

    if cache_dir is None:
        active = get_solve_cache()
        if active is not None and active.directory is not None:
            cache_dir = active.directory
    init_dir = str(cache_dir) if cache_dir is not None else None

    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(work)),
            initializer=_worker_init,
            initargs=(init_dir,),
        ) as executor:
            return list(executor.map(fn, work))
    except (OSError, PermissionError) as exc:
        warnings.warn(
            f"parallel executor unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        return [fn(item) for item in work]
