"""The d695 benchmark SOC (ITC'02 SOC Test Benchmarks style).

``d695`` is the academic system the post-2000 TAM literature standardized
on: ten ISCAS cores (two combinational, eight full-scan sequential) with
*explicit* internal scan chain structures. This module reconstructs it from
the published module table — I/O counts, scan chain counts, and compacted
pattern counts — with chain lengths balanced over the published chain count
(the benchmark's own chains are balanced to within one bit) and test power
derived through the same gates x activity proxy as the rest of the catalog.

Use :func:`build_d695` anywhere a :class:`~repro.soc.system.Soc` is
accepted; the explicit ``scan_chains`` make the wrapper substrate honor the
delivered chain structure instead of re-balancing flip-flops.
"""

from __future__ import annotations

from repro.soc.catalog import CATALOG, POWER_SCALE
from repro.soc.core import Core
from repro.soc.system import Soc

#: name -> (inputs, outputs, scan chain count, patterns). I/O and chain
#: counts follow the published d695 module table; pattern counts are the
#: compacted (MinTest-family) test set sizes it ships with.
D695_MODULES: dict[str, tuple[int, int, int, int]] = {
    "c6288": (32, 32, 0, 12),
    "c7552": (207, 108, 0, 73),
    "s838": (35, 2, 1, 75),
    "s9234": (36, 39, 4, 105),
    "s38584": (38, 304, 32, 110),
    "s13207": (62, 152, 16, 234),
    "s15850": (77, 150, 16, 95),
    "s5378": (35, 49, 4, 97),
    "s35932": (35, 320, 32, 12),
    "s38417": (28, 106, 32, 68),
}

#: Flip-flop and gate counts for d695 modules missing from the main catalog.
_EXTRA_STRUCTURE = {
    "s838": (32, 446),
}


def _balanced_chains(total: int, count: int) -> tuple[int, ...] | None:
    if count == 0 or total == 0:
        return None
    base, extra = divmod(total, count)
    return tuple([base + 1] * extra + [base] * (count - extra))


def d695_core(name: str) -> Core:
    """Build one d695 module as a :class:`Core` with explicit scan chains."""
    inputs, outputs, chain_count, patterns = D695_MODULES[name]
    if name in CATALOG:
        template = CATALOG[name]
        flipflops, gates, activity = (
            template.num_flipflops,
            template.num_gates,
            template.activity,
        )
    else:
        flipflops, gates = _EXTRA_STRUCTURE[name]
        activity = 0.6
    chains = _balanced_chains(flipflops, chain_count)
    # Interface width: the delivered chain count plus one wire of test
    # bandwidth per ~64 functional I/O bits, clamped like the catalog.
    io_wires = max(1, max(inputs, outputs) // 64)
    width = max(4, min(32, max(chain_count, io_wires)))
    return Core(
        name=name,
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=activity,
        scan_chains=chains,
    )


def build_d695() -> Soc:
    """The ten-core d695 benchmark SOC."""
    cores = [d695_core(name) for name in D695_MODULES]
    return Soc("d695", cores, die_width=14.0, die_height=14.0)
