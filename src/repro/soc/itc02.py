"""ITC'02-class benchmark SOCs: d695 plus p93791/t512505 analogues.

``d695`` is the academic system the post-2000 TAM literature standardized
on: ten ISCAS cores (two combinational, eight full-scan sequential) with
*explicit* internal scan chain structures. This module reconstructs it from
the published module table — I/O counts, scan chain counts, and compacted
pattern counts — with chain lengths balanced over the published chain count
(the benchmark's own chains are balanced to within one bit) and test power
derived through the same gates x activity proxy as the rest of the catalog.

:func:`build_p93791` and :func:`build_t512505` extend the family to the
industrial scale the ITC'02 SOC Test Benchmarks (Marinissen, Iyengar &
Chakrabarty, ITC 2002) made standard. Their module tables here are
*analogues*, not transcriptions: they reproduce the published scale
signatures — p93791's 32 modules with heavy-tailed scan volume and several
~100k-gate blocks, t512505's 31 modules with one giant module dominating
total test time — with core structure derived exactly like the d695
reconstruction. Makespans on these systems are comparable in *shape* to
published ITC'02 results, not in absolute cycles.

Use the builders anywhere a :class:`~repro.soc.system.Soc` is accepted; the
explicit ``scan_chains`` make the wrapper substrate honor the delivered
chain structure instead of re-balancing flip-flops. All three systems are
registered in the stress-corpus registry
(:func:`repro.soc.catalog.corpus_soc`), so ``resolve_soc("p93791")`` works
everywhere a spec string does.
"""

from __future__ import annotations

import math

from repro.soc.catalog import CATALOG, POWER_SCALE, register_corpus
from repro.soc.core import Core
from repro.soc.system import Soc
from repro.util.errors import ValidationError

#: name -> (inputs, outputs, scan chain count, patterns). I/O and chain
#: counts follow the published d695 module table; pattern counts are the
#: compacted (MinTest-family) test set sizes it ships with.
D695_MODULES: dict[str, tuple[int, int, int, int]] = {
    "c6288": (32, 32, 0, 12),
    "c7552": (207, 108, 0, 73),
    "s838": (35, 2, 1, 75),
    "s9234": (36, 39, 4, 105),
    "s38584": (38, 304, 32, 110),
    "s13207": (62, 152, 16, 234),
    "s15850": (77, 150, 16, 95),
    "s5378": (35, 49, 4, 97),
    "s35932": (35, 320, 32, 12),
    "s38417": (28, 106, 32, 68),
}

#: Flip-flop and gate counts for d695 modules missing from the main catalog.
_EXTRA_STRUCTURE = {
    "s838": (32, 446),
}


def _balanced_chains(total: int, count: int) -> tuple[int, ...] | None:
    """Split ``total`` flip-flops into ``count`` balanced scan chains.

    ``None`` is the documented "no scan structure" sentinel, returned only
    for ``count == 0`` (a combinational module — :class:`Core` then
    balances nothing). Every other degenerate input is a module-table
    error, not a sentinel case, and raises
    :class:`~repro.util.errors.ValidationError`: negative sizes, a chain
    count with no flip-flops to fill it, and fewer flip-flops than chains
    (every chain must hold at least one bit — the old behavior silently
    emitted zero-length chains that :class:`Core` rejected much later with
    a misleading message).
    """
    if total < 0 or count < 0:
        raise ValidationError(
            f"scan split needs non-negative sizes, got total={total}, count={count}"
        )
    if count == 0:
        return None
    if total < count:
        raise ValidationError(
            f"cannot balance {total} flip-flop(s) over {count} scan chain(s): "
            "every chain needs at least one bit"
        )
    base, extra = divmod(total, count)
    return tuple([base + 1] * extra + [base] * (count - extra))


def d695_core(name: str) -> Core:
    """Build one d695 module as a :class:`Core` with explicit scan chains."""
    inputs, outputs, chain_count, patterns = D695_MODULES[name]
    if name in CATALOG:
        template = CATALOG[name]
        flipflops, gates, activity = (
            template.num_flipflops,
            template.num_gates,
            template.activity,
        )
    else:
        flipflops, gates = _EXTRA_STRUCTURE[name]
        activity = 0.6
    chains = _balanced_chains(flipflops, chain_count)
    # Interface width: the delivered chain count plus one wire of test
    # bandwidth per ~64 functional I/O bits, clamped like the catalog.
    io_wires = max(1, max(inputs, outputs) // 64)
    width = max(4, min(32, max(chain_count, io_wires)))
    return Core(
        name=name,
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=activity,
        scan_chains=chains,
    )


def build_d695() -> Soc:
    """The ten-core d695 benchmark SOC."""
    cores = [d695_core(name) for name in D695_MODULES]
    return Soc("d695", cores, die_width=14.0, die_height=14.0)


#: p93791-analogue module table:
#: name -> (inputs, outputs, flipflops, scan chains, gates, patterns, activity).
#: 32 modules with the heavy-tailed scan-volume signature the ITC'02
#: p93791 system is known for: a handful of very large scan-dominated
#: blocks (m6, m11, m17, m20, m27), a mid-size body, and a combinational
#: tail. Values are analogues (see the module docstring).
P93791_MODULES: dict[str, tuple[int, int, int, int, int, int, float]] = {
    "m1": (109, 32, 0, 0, 5402, 409, 0.58),
    "m2": (89, 31, 2313, 10, 28654, 602, 0.55),
    "m3": (176, 115, 1922, 9, 21124, 272, 0.56),
    "m4": (36, 44, 605, 4, 6101, 311, 0.60),
    "m5": (66, 33, 665, 4, 8084, 422, 0.58),
    "m6": (417, 324, 23789, 46, 161237, 218, 0.50),
    "m7": (160, 69, 5768, 24, 39621, 177, 0.53),
    "m8": (74, 40, 2343, 12, 17594, 156, 0.56),
    "m9": (115, 76, 4773, 22, 33254, 182, 0.54),
    "m10": (84, 12, 1211, 8, 9741, 755, 0.57),
    "m11": (74, 40, 11316, 29, 65453, 187, 0.52),
    "m12": (26, 16, 7412, 24, 42134, 649, 0.51),
    "m13": (52, 11, 5405, 16, 31925, 776, 0.52),
    "m14": (34, 41, 244, 2, 4028, 72, 0.62),
    "m15": (72, 87, 290, 2, 5263, 74, 0.61),
    "m16": (36, 44, 614, 4, 6441, 312, 0.59),
    "m17": (54, 51, 10426, 43, 58923, 216, 0.52),
    "m18": (28, 32, 745, 4, 7125, 58, 0.60),
    "m19": (34, 44, 4381, 16, 28653, 119, 0.54),
    "m20": (110, 81, 7552, 44, 44832, 210, 0.52),
    "m21": (36, 28, 0, 0, 2412, 113, 0.62),
    "m22": (44, 31, 806, 5, 7024, 82, 0.59),
    "m23": (93, 32, 1233, 8, 11627, 944, 0.55),
    "m24": (214, 138, 0, 0, 13042, 241, 0.54),
    "m25": (54, 46, 3024, 14, 20983, 336, 0.55),
    "m26": (80, 64, 1891, 10, 15312, 108, 0.56),
    "m27": (92, 28, 12034, 46, 68023, 916, 0.50),
    "m28": (48, 40, 2801, 12, 19872, 132, 0.55),
    "m29": (102, 84, 6124, 24, 38112, 395, 0.53),
    "m30": (38, 20, 0, 0, 3256, 68, 0.63),
    "m31": (66, 58, 4225, 18, 27412, 154, 0.54),
    "m32": (28, 16, 1522, 8, 12211, 84, 0.57),
}

#: t512505-analogue module table (same column layout). The signature here
#: is the opposite of p93791's: 31 modules where one giant block (t31)
#: holds the bulk of the test data, so its test time dominates any
#: schedule — the singleton lower bound is nearly tight, which is exactly
#: the regime where heuristics close the gap fast and exact search spends
#: its time proving it.
T512505_MODULES: dict[str, tuple[int, int, int, int, int, int, float]] = {
    "t1": (32, 24, 0, 0, 2210, 84, 0.62),
    "t2": (45, 31, 422, 2, 4812, 112, 0.59),
    "t3": (28, 16, 318, 2, 3926, 96, 0.60),
    "t4": (64, 49, 1204, 6, 10231, 134, 0.56),
    "t5": (39, 27, 616, 4, 6423, 88, 0.58),
    "t6": (81, 60, 1822, 8, 14214, 156, 0.55),
    "t7": (26, 18, 0, 0, 1804, 64, 0.63),
    "t8": (52, 40, 924, 4, 8122, 102, 0.57),
    "t9": (70, 55, 1410, 6, 11834, 122, 0.56),
    "t10": (35, 22, 512, 3, 5214, 76, 0.59),
    "t11": (92, 71, 2218, 10, 16425, 168, 0.54),
    "t12": (41, 30, 704, 4, 6912, 94, 0.58),
    "t13": (58, 44, 1108, 5, 9623, 118, 0.56),
    "t14": (30, 21, 386, 2, 4218, 72, 0.60),
    "t15": (76, 58, 1624, 7, 13122, 144, 0.55),
    "t16": (47, 35, 812, 4, 7524, 98, 0.57),
    "t17": (66, 50, 1315, 6, 11023, 128, 0.56),
    "t18": (33, 24, 448, 2, 4624, 80, 0.59),
    "t19": (85, 66, 1918, 9, 15212, 158, 0.54),
    "t20": (43, 32, 664, 3, 6321, 90, 0.58),
    "t21": (61, 47, 1212, 6, 10412, 124, 0.56),
    "t22": (29, 20, 352, 2, 4012, 70, 0.60),
    "t23": (72, 56, 1520, 7, 12423, 138, 0.55),
    "t24": (38, 28, 576, 3, 5823, 84, 0.58),
    "t25": (55, 42, 1024, 5, 9121, 114, 0.56),
    "t26": (31, 23, 412, 2, 4415, 74, 0.59),
    "t27": (79, 62, 1726, 8, 13824, 150, 0.54),
    "t28": (44, 33, 728, 4, 7123, 92, 0.57),
    "t29": (63, 48, 1268, 6, 10823, 126, 0.55),
    "t30": (36, 26, 524, 3, 5412, 78, 0.58),
    "t31": (54, 31, 76005, 32, 418124, 3370, 0.48),
}


def _analogue_core(name: str, spec: tuple[int, int, int, int, int, int, float]) -> Core:
    """Build one analogue module with the d695 derivation rules."""
    inputs, outputs, flipflops, chain_count, gates, patterns, activity = spec
    chains = _balanced_chains(flipflops, chain_count)
    io_wires = max(1, max(inputs, outputs) // 64)
    width = max(4, min(32, max(chain_count, io_wires)))
    return Core(
        name=name,
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=activity,
        scan_chains=chains,
    )


def _analogue_soc(name: str, modules: dict[str, tuple]) -> Soc:
    cores = [_analogue_core(module, spec) for module, spec in modules.items()]
    total_area = sum(core.area_mm2 for core in cores)
    side = max(4.0, round(math.sqrt(total_area * 2.0) + 2.0, 1))
    return Soc(name, cores, die_width=side, die_height=side)


def build_p93791() -> Soc:
    """The 32-module p93791-analogue SOC (heavy-tailed scan volume)."""
    return _analogue_soc("p93791", P93791_MODULES)


def build_t512505() -> Soc:
    """The 31-module t512505-analogue SOC (one dominating giant module)."""
    return _analogue_soc("t512505", T512505_MODULES)


register_corpus("d695", build_d695)
register_corpus("p93791", build_p93791)
register_corpus("t512505", build_t512505)
