"""The system-on-chip container."""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.util.errors import ValidationError


@dataclass
class Soc:
    """An SOC: a named set of cores plus die-level test parameters.

    Parameters
    ----------
    name:
        System identifier (e.g. ``"S1"``).
    cores:
        The embedded cores. Names must be unique; assignment vectors and
        constraint matrices throughout the library index cores by their
        position in this list, so order is significant and stable.
    die_width / die_height:
        Die dimensions in mm; the floorplanner places cores inside this box
        and the TAM source/sink pads sit on its boundary.
    power_budget:
        Default maximum concurrent test power (mW); experiment sweeps
        override it per run. ``None`` means unconstrained.
    """

    name: str
    cores: list[Core]
    die_width: float = 10.0
    die_height: float = 10.0
    power_budget: float | None = None

    def __post_init__(self):
        if not self.name:
            raise ValidationError("SOC name must be non-empty")
        if not self.cores:
            raise ValidationError(f"SOC {self.name!r} must contain at least one core")
        names = [core.name for core in self.cores]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(f"SOC {self.name!r} has duplicate core names: {sorted(duplicates)}")
        if self.die_width <= 0 or self.die_height <= 0:
            raise ValidationError(f"SOC {self.name!r}: die dimensions must be positive")
        if self.power_budget is not None and self.power_budget <= 0:
            raise ValidationError(f"SOC {self.name!r}: power budget must be positive or None")
        self._index = {core.name: i for i, core in enumerate(self.cores)}

    # ----------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def __getitem__(self, key: int | str) -> Core:
        if isinstance(key, str):
            return self.cores[self.index_of(key)]
        return self.cores[key]

    def index_of(self, name: str) -> int:
        """Return the position of the named core (the library-wide core id)."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"SOC {self.name!r} has no core named {name!r}") from None

    @property
    def core_names(self) -> list[str]:
        return [core.name for core in self.cores]

    # ------------------------------------------------------------- summaries
    @property
    def total_gates(self) -> int:
        return sum(core.num_gates for core in self.cores)

    @property
    def total_flipflops(self) -> int:
        return sum(core.num_flipflops for core in self.cores)

    @property
    def total_test_power(self) -> float:
        """Power if every core were tested concurrently (the budget ceiling)."""
        return sum(core.test_power for core in self.cores)

    @property
    def max_test_width(self) -> int:
        """Widest core interface; the fixed-width model needs a bus this wide."""
        return max(core.test_width for core in self.cores)

    @property
    def total_core_area(self) -> float:
        return sum(core.area_mm2 for core in self.cores)

    def describe(self) -> str:
        """Multi-line human-readable inventory (used by example scripts)."""
        lines = [
            f"SOC {self.name}: {len(self.cores)} cores, die "
            f"{self.die_width:g}x{self.die_height:g} mm, "
            f"{self.total_gates} gates, {self.total_flipflops} scan FFs"
        ]
        for core in self.cores:
            lines.append(f"  {core}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Soc({self.name!r}, {len(self.cores)} cores)"
