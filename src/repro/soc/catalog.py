"""ISCAS-85/89 core catalog.

Structural statistics (I/O, flip-flop, and gate counts) are the published
ISCAS benchmark figures [Brglez et al., ISCAS'85; Brglez/Bryan/Kozminski,
ISCAS'89]. Pattern counts are representative compacted-ATPG test-set sizes
from the stuck-at literature of the paper's era (MinTest-family results);
they set the relative test lengths, which is what the makespan optimization
consumes.

Test width is the TAM interface width each core's test set is prepared for —
the paper's `w_i`. We derive it from the core's data volume per pattern
(larger cores get wider interfaces, capped at 32), matching the paper's setup
where cores have heterogeneous fixed interface widths.

Test power is derived as ``gates * activity * POWER_SCALE`` — a standard
scan-test power proxy (power tracks switched capacitance, which tracks gate
count times toggle rate). Absolute milliwatt values are synthetic; only the
*relative* pairwise sums matter to the power constraints, and the experiment
sweeps pick budgets that make the constraints bind, as in the paper.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.soc.core import Core
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.soc.system import Soc

#: mW per (gate x activity) at the nominal scan-shift frequency.
POWER_SCALE = 0.05

#: Catalog rows: name -> (inputs, outputs, flipflops, gates, patterns, activity)
_RAW: dict[str, tuple[int, int, int, int, int, float]] = {
    # ISCAS-85 combinational benchmarks
    "c432": (36, 7, 0, 160, 56, 0.60),
    "c499": (41, 32, 0, 202, 53, 0.58),
    "c880": (60, 26, 0, 383, 51, 0.55),
    "c1355": (41, 32, 0, 546, 85, 0.57),
    "c1908": (33, 25, 0, 880, 118, 0.56),
    "c2670": (233, 140, 0, 1193, 107, 0.52),
    "c3540": (50, 22, 0, 1669, 151, 0.55),
    "c5315": (178, 123, 0, 2307, 109, 0.53),
    "c6288": (32, 32, 0, 2416, 34, 0.70),
    "c7552": (207, 108, 0, 3512, 211, 0.54),
    # ISCAS-89 full-scan sequential benchmarks
    "s953": (16, 23, 29, 395, 93, 0.62),
    "s1196": (14, 14, 18, 529, 122, 0.60),
    "s1238": (14, 14, 18, 508, 136, 0.60),
    "s5378": (35, 49, 179, 2779, 111, 0.58),
    "s9234": (36, 39, 211, 5597, 139, 0.55),
    "s13207": (62, 152, 638, 7951, 235, 0.50),
    "s15850": (77, 150, 534, 9772, 126, 0.52),
    "s35932": (35, 320, 1728, 16065, 16, 0.65),
    "s38417": (28, 106, 1636, 22179, 91, 0.55),
    "s38584": (38, 304, 1426, 19253, 136, 0.53),
}


def _derive_test_width(inputs: int, outputs: int, flipflops: int) -> int:
    """Assign the core's native TAM interface width.

    Heuristic: one TAM wire per ~16 bits of per-pattern scan data, clamped to
    [4, 32] and rounded up to a multiple of 4 — producing the heterogeneous
    4/8/16/24/32-bit interfaces typical of the paper's examples.
    """
    bits = max(flipflops + inputs, flipflops + outputs)
    width = max(4, min(32, math.ceil(bits / 16)))
    return int(math.ceil(width / 4) * 4)


def _build_catalog() -> dict[str, Core]:
    catalog = {}
    for name, (inputs, outputs, flipflops, gates, patterns, activity) in _RAW.items():
        catalog[name] = Core(
            name=name,
            num_inputs=inputs,
            num_outputs=outputs,
            num_flipflops=flipflops,
            num_gates=gates,
            num_patterns=patterns,
            test_width=_derive_test_width(inputs, outputs, flipflops),
            test_power=round(gates * activity * POWER_SCALE, 1),
            activity=activity,
        )
    return catalog


#: Immutable-by-convention mapping of benchmark name -> Core.
CATALOG: dict[str, Core] = _build_catalog()


def catalog_names() -> list[str]:
    """All benchmark names, ISCAS-85 first, each group by size."""
    return sorted(CATALOG, key=lambda n: (n[0] != "c", CATALOG[n].num_gates))


def catalog_core(name: str, rename: str | None = None) -> Core:
    """Fetch a catalog core, optionally renamed for multi-instance SOCs."""
    try:
        core = CATALOG[name]
    except KeyError:
        raise ValidationError(
            f"unknown benchmark core {name!r}; known: {', '.join(catalog_names())}"
        ) from None
    return core.renamed(rename) if rename else core


# --------------------------------------------------------------------------
# Stress-corpus registry
#
# The scale experiments (benchmarks/bench_scale.py, ROADMAP item 2) need
# named, reproducible systems well beyond the ten-core academic SOCs.
# Builders register themselves here — :mod:`repro.soc.itc02` contributes
# the ITC'02-class analogues (d695, p93791, t512505) and
# :mod:`repro.soc.generator` the seeded synthetic scale points — and
# :func:`repro.core.request.resolve_soc` resolves corpus names so a spec
# string like ``"p93791"`` works everywhere an SOC is accepted.

_CORPUS: dict[str, Callable[[], "Soc"]] = {}


def register_corpus(name: str, builder: Callable[[], "Soc"]) -> None:
    """Register a named corpus system (lower-case name -> zero-arg builder).

    Re-registering a name replaces the builder — the corpus modules run
    their registrations at import time, which may happen more than once
    under test re-imports.
    """
    _CORPUS[name.lower()] = builder


def corpus_names() -> list[str]:
    """All registered stress-corpus system names, sorted."""
    return sorted(_CORPUS)


def corpus_soc(name: str) -> "Soc":
    """Build a corpus system by name (case-insensitive)."""
    try:
        builder = _CORPUS[name.lower()]
    except KeyError:
        raise ValidationError(
            f"unknown corpus system {name!r}; known: {', '.join(corpus_names())}"
        ) from None
    return builder()
