"""The embedded-core record.

A :class:`Core` is a *testable unit*: a block delivered with a precomputed
test set (pattern count), structural statistics (I/O, scan flip-flops,
gates), and test resource requirements (test access width, test power). The
TAM design machinery never looks inside the core — exactly the modular-test
abstraction the paper works in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Core:
    """An embedded core with its test set and physical summary.

    Parameters
    ----------
    name:
        Unique identifier within an SOC.
    num_inputs / num_outputs:
        Functional input/output terminal counts (test stimulus and response
        bits per pattern, beyond scan).
    num_flipflops:
        Scan flip-flops (0 for combinational cores — ISCAS-85).
    num_gates:
        Logic gate count; drives the derived area and power models.
    num_patterns:
        Size of the precomputed test set.
    test_width:
        TAM width (bits) the core's test interface was designed for. In the
        paper's fixed-width model a core can only sit on a bus at least this
        wide; in the serialization model narrower buses stretch the test.
    test_power:
        Average power dissipated while this core is under test (mW). Consumed
        only through pairwise sums against the system budget ``P_max``.
    activity:
        Scan toggle activity factor in (0, 1]; recorded so the power model is
        auditable (``test_power`` is derived from gates x activity by the
        catalog, but custom cores may set any consistent pair).
    scan_chains:
        Optional explicit internal scan chain lengths (must sum to
        ``num_flipflops``). Cores delivered with a fixed chain structure —
        the ITC'02 benchmark style — set this; otherwise the wrapper
        substrate derives balanced chains.
    """

    name: str
    num_inputs: int
    num_outputs: int
    num_flipflops: int
    num_gates: int
    num_patterns: int
    test_width: int
    test_power: float
    activity: float = 0.6
    scan_chains: tuple[int, ...] | None = None

    def __post_init__(self):
        if not self.name:
            raise ValidationError("core name must be non-empty")
        for attr in ("num_inputs", "num_outputs", "num_flipflops", "num_gates", "num_patterns"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value < 0:
                raise ValidationError(f"core {self.name!r}: {attr} must be a non-negative int, got {value!r}")
        if self.num_patterns == 0:
            raise ValidationError(f"core {self.name!r}: a testable core needs at least one pattern")
        if self.test_width <= 0:
            raise ValidationError(f"core {self.name!r}: test_width must be positive, got {self.test_width}")
        if self.test_power < 0:
            raise ValidationError(f"core {self.name!r}: test_power must be non-negative")
        if not 0 < self.activity <= 1:
            raise ValidationError(f"core {self.name!r}: activity must be in (0, 1], got {self.activity}")
        if self.scan_chains is not None:
            chains = tuple(int(c) for c in self.scan_chains)
            object.__setattr__(self, "scan_chains", chains)
            if any(c <= 0 for c in chains):
                raise ValidationError(f"core {self.name!r}: scan chain lengths must be positive")
            if sum(chains) != self.num_flipflops:
                raise ValidationError(
                    f"core {self.name!r}: scan chains sum to {sum(chains)} "
                    f"but the core has {self.num_flipflops} flip-flops"
                )

    # ------------------------------------------------------------- derived
    @property
    def is_sequential(self) -> bool:
        """True if the core has scan flip-flops."""
        return self.num_flipflops > 0

    @property
    def scan_in_bits(self) -> int:
        """Bits shifted *into* the wrapper per pattern (stimulus + scan load)."""
        return self.num_flipflops + self.num_inputs

    @property
    def scan_out_bits(self) -> int:
        """Bits shifted *out of* the wrapper per pattern (response + scan unload)."""
        return self.num_flipflops + self.num_outputs

    @property
    def area_mm2(self) -> float:
        """Die area estimate at ~10k usable gates per mm^2 plus scan overhead."""
        return self.num_gates / 10_000.0 + self.num_flipflops / 40_000.0

    def scan_length(self, width: int) -> int:
        """Longest wrapper chain when test data is balanced over ``width`` wires."""
        if width <= 0:
            raise ValidationError(f"width must be positive, got {width}")
        longest_in = math.ceil(self.scan_in_bits / width)
        longest_out = math.ceil(self.scan_out_bits / width)
        return max(longest_in, longest_out)

    def with_patterns(self, num_patterns: int) -> Core:
        """Return a copy with a different test-set size (used by the generator)."""
        return replace(self, num_patterns=num_patterns)

    def renamed(self, name: str) -> Core:
        """Return a copy under a new name (for SOCs embedding a core twice)."""
        return replace(self, name=name)

    def __str__(self) -> str:
        kind = "seq" if self.is_sequential else "comb"
        return (
            f"{self.name} ({kind}: {self.num_gates}g, {self.num_flipflops}ff, "
            f"{self.num_patterns}p, w={self.test_width}, {self.test_power:.1f}mW)"
        )
