"""Seeded synthetic SOC generation for scalability sweeps.

The ILP-scaling experiment (F4) needs a family of SOCs of increasing core
count with controlled statistics. Two generation modes:

- ``mode="catalog"`` — sample (with replacement) from the ISCAS catalog and
  jitter the pattern counts, so cores keep realistic structure;
- ``mode="parametric"`` — draw core structure from log-normal gate-count and
  pattern distributions, producing arbitrary-size systems independent of the
  catalog.
"""

from __future__ import annotations

import math

from repro.soc.catalog import CATALOG, POWER_SCALE, catalog_names
from repro.soc.core import Core
from repro.soc.system import Soc
from repro.util.errors import ValidationError
from repro.util.rng import RngLike, make_rng


def _jittered_patterns(base: int, rng) -> int:
    """Scale a pattern count by a uniform +/-30% factor, at least one."""
    return max(1, int(round(base * rng.uniform(0.7, 1.3))))


def _parametric_core(index: int, rng) -> Core:
    """Draw one synthetic core from log-normal size distributions."""
    gates = int(rng.lognormal(mean=7.8, sigma=0.9)) + 100  # median ~2.5k gates
    sequential = rng.random() < 0.6
    flipflops = int(gates * rng.uniform(0.05, 0.12)) if sequential else 0
    inputs = max(4, int(gates ** 0.45 * rng.uniform(0.5, 1.5)))
    outputs = max(4, int(gates ** 0.45 * rng.uniform(0.4, 1.2)))
    patterns = max(8, int(rng.lognormal(mean=4.5, sigma=0.6)))
    activity = float(rng.uniform(0.45, 0.7))
    bits = max(flipflops + inputs, flipflops + outputs)
    width = max(4, min(32, math.ceil(bits / 16)))
    width = int(math.ceil(width / 4) * 4)
    return Core(
        name=f"syn{index}",
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=round(activity, 3),
    )


def generate_synthetic_soc(
    num_cores: int,
    seed: RngLike = 0,
    mode: str = "catalog",
    name: str | None = None,
) -> Soc:
    """Generate a deterministic synthetic SOC with ``num_cores`` cores.

    The die is sized so the cores cover about half the area, keeping layout
    experiments meaningful at every scale.
    """
    if num_cores <= 0:
        raise ValidationError(f"num_cores must be positive, got {num_cores}")
    if mode not in ("catalog", "parametric"):
        raise ValidationError(f"unknown generation mode {mode!r}")
    rng = make_rng(seed)
    cores: list[Core] = []
    if mode == "catalog":
        pool = catalog_names()
        counts: dict[str, int] = {}
        for _ in range(num_cores):
            base = pool[int(rng.integers(len(pool)))]
            counts[base] = counts.get(base, 0) + 1
            template = CATALOG[base]
            rename = base if counts[base] == 1 else f"{base}_{counts[base]}"
            cores.append(
                template.renamed(rename).with_patterns(
                    _jittered_patterns(template.num_patterns, rng)
                )
            )
    else:
        cores = [_parametric_core(i, rng) for i in range(num_cores)]

    total_area = sum(core.area_mm2 for core in cores)
    side = max(4.0, round(math.sqrt(total_area * 2.0) + 2.0, 1))
    return Soc(
        name or f"SYN{num_cores}",
        cores,
        die_width=side,
        die_height=side,
    )
