"""Seeded synthetic SOC generation for scalability sweeps.

The ILP-scaling experiment (F4) needs a family of SOCs of increasing core
count with controlled statistics. Three generation modes:

- ``mode="catalog"`` — sample (with replacement) from the ISCAS catalog and
  jitter the pattern counts, so cores keep realistic structure;
- ``mode="parametric"`` — draw core structure from log-normal gate-count and
  pattern distributions, producing arbitrary-size systems independent of the
  catalog;
- ``mode="itc02"`` — the stress-corpus mode: heavy-tailed log-normal draws
  calibrated to the ITC'02-class analogues
  (:mod:`repro.soc.itc02`) — mostly sequential cores with explicit
  balanced scan chains, pattern counts spanning two orders of magnitude,
  and the occasional scan monster — for 200+-core systems the scale
  trajectory (``benchmarks/bench_scale.py``) climbs.

Generation is a pure function of ``(num_cores, seed, mode)``: the RNG is a
seeded PCG64 stream and nothing reads ambient state, so the same call is
byte-identical across repeated runs and across worker processes (the
portfolio's fingerprint/dedupe path depends on this — see
``tests/test_generator_determinism.py``). Canonical scale points are
registered in the stress corpus as ``scale32`` … ``scale256``
(:func:`repro.soc.catalog.corpus_soc`).
"""

from __future__ import annotations

import math

from repro.soc.catalog import CATALOG, POWER_SCALE, catalog_names, register_corpus
from repro.soc.core import Core
from repro.soc.itc02 import _balanced_chains
from repro.soc.system import Soc
from repro.util.errors import ValidationError
from repro.util.rng import RngLike, make_rng


def _jittered_patterns(base: int, rng) -> int:
    """Scale a pattern count by a uniform +/-30% factor, at least one."""
    return max(1, int(round(base * rng.uniform(0.7, 1.3))))


def _parametric_core(index: int, rng) -> Core:
    """Draw one synthetic core from log-normal size distributions."""
    gates = int(rng.lognormal(mean=7.8, sigma=0.9)) + 100  # median ~2.5k gates
    sequential = rng.random() < 0.6
    flipflops = int(gates * rng.uniform(0.05, 0.12)) if sequential else 0
    inputs = max(4, int(gates ** 0.45 * rng.uniform(0.5, 1.5)))
    outputs = max(4, int(gates ** 0.45 * rng.uniform(0.4, 1.2)))
    patterns = max(8, int(rng.lognormal(mean=4.5, sigma=0.6)))
    activity = float(rng.uniform(0.45, 0.7))
    bits = max(flipflops + inputs, flipflops + outputs)
    width = max(4, min(32, math.ceil(bits / 16)))
    width = int(math.ceil(width / 4) * 4)
    return Core(
        name=f"syn{index}",
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=round(activity, 3),
    )


def _itc02_core(index: int, rng) -> Core:
    """Draw one ITC'02-class core: heavy-tailed, scan-chained, mostly sequential.

    Calibrated against the p93791/t512505 analogue tables: ~80% sequential
    cores, flip-flop counts with a fat log-normal tail (a few thousand-FF
    scan monsters per couple hundred cores), pattern counts spanning two
    orders of magnitude, and explicit balanced scan chains sized one chain
    per ~256 flip-flops (capped at 46, the largest published chain count).
    """
    gates = int(rng.lognormal(mean=8.6, sigma=1.2)) + 300
    sequential = rng.random() < 0.8
    flipflops = int(gates * rng.uniform(0.06, 0.16)) if sequential else 0
    inputs = max(4, int(gates ** 0.42 * rng.uniform(0.6, 1.6)))
    outputs = max(4, int(gates ** 0.42 * rng.uniform(0.5, 1.4)))
    patterns = max(8, int(rng.lognormal(mean=4.8, sigma=1.0)))
    activity = float(rng.uniform(0.48, 0.64))
    chain_count = 0
    if flipflops:
        chain_count = max(1, min(46, flipflops // 256, flipflops))
    chains = _balanced_chains(flipflops, chain_count)
    io_wires = max(1, max(inputs, outputs) // 64)
    width = max(4, min(32, max(chain_count, io_wires)))
    return Core(
        name=f"p{index}",
        num_inputs=inputs,
        num_outputs=outputs,
        num_flipflops=flipflops,
        num_gates=gates,
        num_patterns=patterns,
        test_width=width,
        test_power=round(gates * activity * POWER_SCALE, 1),
        activity=round(activity, 3),
        scan_chains=chains,
    )


def generate_synthetic_soc(
    num_cores: int,
    seed: RngLike = 0,
    mode: str = "catalog",
    name: str | None = None,
) -> Soc:
    """Generate a deterministic synthetic SOC with ``num_cores`` cores.

    The die is sized so the cores cover about half the area, keeping layout
    experiments meaningful at every scale. The result is a pure function of
    the arguments — identical across repeated calls and across processes.
    """
    if num_cores <= 0:
        raise ValidationError(f"num_cores must be positive, got {num_cores}")
    if mode not in ("catalog", "parametric", "itc02"):
        raise ValidationError(f"unknown generation mode {mode!r}")
    rng = make_rng(seed)
    cores: list[Core] = []
    if mode == "itc02":
        cores = [_itc02_core(i, rng) for i in range(num_cores)]
    elif mode == "catalog":
        pool = catalog_names()
        counts: dict[str, int] = {}
        for _ in range(num_cores):
            base = pool[int(rng.integers(len(pool)))]
            counts[base] = counts.get(base, 0) + 1
            template = CATALOG[base]
            rename = base if counts[base] == 1 else f"{base}_{counts[base]}"
            cores.append(
                template.renamed(rename).with_patterns(
                    _jittered_patterns(template.num_patterns, rng)
                )
            )
    else:
        cores = [_parametric_core(i, rng) for i in range(num_cores)]

    total_area = sum(core.area_mm2 for core in cores)
    side = max(4.0, round(math.sqrt(total_area * 2.0) + 2.0, 1))
    default = ("ITC" if mode == "itc02" else "SYN") + str(num_cores)
    return Soc(
        name or default,
        cores,
        die_width=side,
        die_height=side,
    )


def _scale_point(num_cores: int):
    """A corpus builder for one canonical ITC'02-mode scale point."""
    def build() -> Soc:
        return generate_synthetic_soc(
            num_cores, seed=num_cores, mode="itc02", name=f"scale{num_cores}"
        )
    return build


#: Canonical generated scale points for the stress corpus / BENCH_scale
#: trajectory: seed == core count, so every name is fully reproducible.
SCALE_POINTS = (32, 64, 96, 128, 200, 256)

for _n in SCALE_POINTS:
    register_corpus(f"scale{_n}", _scale_point(_n))
del _n
