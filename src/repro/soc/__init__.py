"""SOC and core data model.

The DAC 2000 evaluation assembles hypothetical systems-on-chip from ISCAS-85
(combinational) and ISCAS-89 (full-scan sequential) benchmark circuits, each
treated as an embedded core with a precomputed test set. This subpackage
provides:

- :class:`Core` / :class:`Soc` — validated data records;
- :mod:`repro.soc.catalog` — the ISCAS core catalog with public structural
  statistics and documented test-set sizes;
- :mod:`repro.soc.builders` — the academic SOCs S1/S2/S3 used throughout the
  reconstructed evaluation;
- :mod:`repro.soc.generator` — seeded synthetic SOCs for scalability sweeps;
- :mod:`repro.soc.io` — a plain-text ``.soc`` interchange format.
"""

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.soc.catalog import (
    CATALOG,
    catalog_core,
    catalog_names,
    corpus_names,
    corpus_soc,
    register_corpus,
)
from repro.soc.builders import build_s1, build_s2, build_s3, build_soc
from repro.soc.generator import SCALE_POINTS, generate_synthetic_soc
from repro.soc.io import load_soc, save_soc, parse_soc, dump_soc
from repro.soc.itc02 import (
    build_d695,
    build_p93791,
    build_t512505,
    d695_core,
    D695_MODULES,
    P93791_MODULES,
    T512505_MODULES,
)

__all__ = [
    "Core",
    "Soc",
    "CATALOG",
    "catalog_core",
    "catalog_names",
    "corpus_names",
    "corpus_soc",
    "register_corpus",
    "build_s1",
    "build_s2",
    "build_s3",
    "build_soc",
    "generate_synthetic_soc",
    "SCALE_POINTS",
    "load_soc",
    "save_soc",
    "parse_soc",
    "dump_soc",
    "build_d695",
    "build_p93791",
    "build_t512505",
    "d695_core",
    "D695_MODULES",
    "P93791_MODULES",
    "T512505_MODULES",
]
