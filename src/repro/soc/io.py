"""Plain-text ``.soc`` interchange format.

A deliberately simple, diff-friendly format in the spirit of the later
ITC'02 SOC benchmark files, so users can describe their own systems without
touching Python::

    # my system
    soc MySys
    die 12.5 10.0
    powerbudget 900
    core dsp inputs=32 outputs=32 flipflops=400 gates=9000 \
             patterns=120 width=16 power=270.0 activity=0.6
    core rom inputs=18 outputs=8 flipflops=0 gates=700 \
             patterns=40 width=8 power=21.0

Lines starting with ``#`` are comments; blank lines are ignored; a trailing
backslash continues a line. ``activity`` is optional (defaults to 0.6).
"""

from __future__ import annotations

import os

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.util.errors import ValidationError

_CORE_FIELDS = {
    "inputs": "num_inputs",
    "outputs": "num_outputs",
    "flipflops": "num_flipflops",
    "gates": "num_gates",
    "patterns": "num_patterns",
    "width": "test_width",
    "power": "test_power",
    "activity": "activity",
    "chains": "scan_chains",
}
_REQUIRED = {"inputs", "outputs", "flipflops", "gates", "patterns", "width", "power"}
_INT_FIELDS = {"inputs", "outputs", "flipflops", "gates", "patterns", "width"}
_LIST_FIELDS = {"chains"}


def _logical_lines(text: str):
    """Yield (line_number, content) with comments stripped and continuations joined."""
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            if not pending:
                pending_start = number
            pending += line[:-1] + " "
            continue
        combined = (pending + line).strip()
        pending = ""
        if combined:
            yield (pending_start or number, combined)
        pending_start = 0
    if pending.strip():
        yield (pending_start, pending.strip())


def parse_soc(text: str) -> Soc:
    """Parse ``.soc`` text into a validated :class:`Soc`."""
    name: str | None = None
    die = (10.0, 10.0)
    power_budget: float | None = None
    cores: list[Core] = []

    for number, line in _logical_lines(text):
        tokens = line.split()
        keyword = tokens[0].lower()
        try:
            if keyword == "soc":
                if len(tokens) != 2:
                    raise ValidationError("expected: soc <name>")
                name = tokens[1]
            elif keyword == "die":
                if len(tokens) != 3:
                    raise ValidationError("expected: die <width_mm> <height_mm>")
                die = (float(tokens[1]), float(tokens[2]))
            elif keyword == "powerbudget":
                if len(tokens) != 2:
                    raise ValidationError("expected: powerbudget <mW>")
                power_budget = float(tokens[1])
            elif keyword == "core":
                cores.append(_parse_core(tokens))
            else:
                raise ValidationError(f"unknown keyword {tokens[0]!r}")
        except ValidationError as exc:
            raise ValidationError(f"line {number}: {exc}") from None
        except ValueError as exc:
            raise ValidationError(f"line {number}: {exc}") from None

    if name is None:
        raise ValidationError("missing 'soc <name>' line")
    return Soc(name, cores, die_width=die[0], die_height=die[1], power_budget=power_budget)


def _parse_core(tokens: list[str]) -> Core:
    if len(tokens) < 2:
        raise ValidationError("expected: core <name> key=value ...")
    fields: dict[str, float] = {}
    for token in tokens[2:]:
        if "=" not in token:
            raise ValidationError(f"malformed core attribute {token!r} (expected key=value)")
        key, _, value = token.partition("=")
        key = key.lower()
        if key not in _CORE_FIELDS:
            raise ValidationError(f"unknown core attribute {key!r}")
        if key in _LIST_FIELDS:
            fields[key] = tuple(int(item) for item in value.split(",") if item)
        elif key in _INT_FIELDS:
            fields[key] = int(value)
        else:
            fields[key] = float(value)
    missing = _REQUIRED - fields.keys()
    if missing:
        raise ValidationError(f"core {tokens[1]!r} missing attributes: {sorted(missing)}")
    kwargs = {_CORE_FIELDS[key]: value for key, value in fields.items()}
    return Core(name=tokens[1], **kwargs)


def dump_soc(soc: Soc) -> str:
    """Serialize an SOC to ``.soc`` text (round-trips with :func:`parse_soc`)."""
    lines = [f"# {soc.name}: {len(soc)} cores", f"soc {soc.name}", f"die {soc.die_width:g} {soc.die_height:g}"]
    if soc.power_budget is not None:
        lines.append(f"powerbudget {soc.power_budget:g}")
    for core in soc.cores:
        line = (
            f"core {core.name} inputs={core.num_inputs} outputs={core.num_outputs} "
            f"flipflops={core.num_flipflops} gates={core.num_gates} "
            f"patterns={core.num_patterns} width={core.test_width} "
            f"power={core.test_power:g} activity={core.activity:g}"
        )
        if core.scan_chains is not None:
            line += " chains=" + ",".join(str(c) for c in core.scan_chains)
        lines.append(line)
    return "\n".join(lines) + "\n"


def load_soc(path: str | os.PathLike) -> Soc:
    """Read and parse a ``.soc`` file."""
    with open(path, encoding="utf-8") as handle:
        return parse_soc(handle.read())


def save_soc(soc: Soc, path: str | os.PathLike) -> None:
    """Write an SOC to a ``.soc`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_soc(soc))
