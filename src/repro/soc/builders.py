"""Academic SOC builders.

The DAC 2000 evaluation uses hypothetical SOCs assembled from ISCAS cores.
We reconstruct three:

- **S1** — the six-core system of the VTS/DAC 2000 papers (three ISCAS-85
  combinational cores, three ISCAS-89 full-scan cores);
- **S2** — a ten-core system mixing small and very large cores, stressing
  the width-adaptation and power constraints;
- **S3** — an eighteen-core merge used for scalability studies (Figure F4).

Die sizes are chosen so total core area occupies roughly half the die,
leaving realistic routing channels for the layout experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.soc.catalog import catalog_core
from repro.soc.system import Soc

#: Core mix of the paper's six-core example system.
S1_CORES = ("c880", "c2670", "c7552", "s953", "s5378", "s1196")

#: Ten-core system with the big ISCAS-89 designs.
S2_CORES = (
    "c432",
    "c499",
    "c1908",
    "c3540",
    "c6288",
    "s9234",
    "s13207",
    "s15850",
    "s38417",
    "s38584",
)

#: Eighteen-core merge: S1 + S2 + two extra heavyweights.
S3_EXTRA = ("c5315", "s35932")


def build_soc(
    name: str,
    core_names: Sequence[str],
    die_width: float,
    die_height: float,
    power_budget: float | None = None,
) -> Soc:
    """Assemble an SOC from catalog benchmarks.

    Duplicate entries are allowed and are renamed ``<core>_2``, ``<core>_3``
    ... so a system can embed the same IP block several times (common in the
    paper's successors' benchmarks).
    """
    seen: dict[str, int] = {}
    cores = []
    for base in core_names:
        seen[base] = seen.get(base, 0) + 1
        rename = base if seen[base] == 1 else f"{base}_{seen[base]}"
        cores.append(catalog_core(base, rename=rename))
    return Soc(name, cores, die_width=die_width, die_height=die_height, power_budget=power_budget)


def build_s1() -> Soc:
    """The six-core academic SOC S1 (the paper's running example)."""
    return build_soc("S1", S1_CORES, die_width=8.0, die_height=8.0)


def build_s2() -> Soc:
    """The ten-core academic SOC S2 with the large ISCAS-89 cores."""
    return build_soc("S2", S2_CORES, die_width=14.0, die_height=14.0)


def build_s3() -> Soc:
    """The eighteen-core scalability SOC S3 = S1 ∪ S2 ∪ extras."""
    return build_soc("S3", S1_CORES + S2_CORES + S3_EXTRA, die_width=18.0, die_height=18.0)
