"""Design-as-a-service: an async job queue + HTTP/JSON API over the solve
runtime.

Every entry point funnels into the same unified
:class:`~repro.core.request.SolveRequest` surface the library and the CLI
use, so a request fingerprints, caches, and dedupes identically no matter
which front-end produced it. Structured solver knobs (branching, cuts,
root presolve, warm-started node LPs) ride the ``policy.solver`` block of
the wire payload as plain JSON — see
:meth:`repro.obs.SolverOptions.from_dict`. See DESIGN.md §11 for lanes,
dedupe, tenancy, and failure semantics.

- :class:`JobScheduler` — fair-share lanes, fingerprint dedupe, tenant
  cache namespaces, incumbent checkpoints (:mod:`repro.service.scheduler`);
- :class:`DesignServer` / :func:`serve` — the stdlib HTTP/1.1 front-end
  (:mod:`repro.service.http`);
- :class:`ServiceClient` — stdlib client with submit/poll/stream/cancel
  (:mod:`repro.service.client`);
- :func:`run_load` — the load generator behind the service benchmark and
  the CI smoke (:mod:`repro.service.loadgen`).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.http import DesignServer, serve
from repro.service.jobs import DEFAULT_LANES, JOB_STATUSES, LANES, Job
from repro.service.loadgen import run_load
from repro.service.scheduler import JobScheduler

__all__ = [
    "DEFAULT_LANES",
    "DesignServer",
    "JOB_STATUSES",
    "Job",
    "JobScheduler",
    "LANES",
    "ServiceClient",
    "ServiceError",
    "run_load",
    "serve",
]
