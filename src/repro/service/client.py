"""Thread-safe stdlib client for the design service.

One :class:`ServiceClient` per base URL; every call opens its own
``http.client`` connection (the server closes connections per request), so
a single client instance can be shared across threads — the load generator
does exactly that.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any
from urllib.parse import urlparse

from repro.core.request import SolveRequest
from repro.obs import now


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict[str, Any]):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Submit / poll / fetch / cancel against one service instance."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"base_url must be http://host:port, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # --------------------------------------------------------------- plumbing
    def _call(
        self, method: str, path: str, body: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, json.loads(data) if data else {}
        finally:
            conn.close()

    def _ok(self, method: str, path: str, body: dict[str, Any] | None = None):
        status, payload = self._call(method, path, body)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload

    # -------------------------------------------------------------------- api
    def health(self) -> bool:
        return bool(self._ok("GET", "/v1/health").get("ok"))

    def metrics(self) -> dict[str, Any]:
        return self._ok("GET", "/v1/metrics")

    def submit(
        self,
        request: "SolveRequest | dict[str, Any]",
        tenant: str | None = None,
        lane: str | None = None,
    ) -> dict[str, Any]:
        """Submit a request; returns ``{"job": {...}, "deduped": bool}``."""
        wire = request.as_payload() if isinstance(request, SolveRequest) else request
        body: dict[str, Any] = {"request": wire}
        if tenant is not None:
            body["tenant"] = tenant
        if lane is not None:
            body["lane"] = lane
        return self._ok("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict[str, Any]:
        return self._ok("GET", f"/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's result payload (raises until it is done)."""
        return self._ok("GET", f"/v1/jobs/{job_id}/result")["result"]

    def stream(self, job_id: str) -> dict[str, Any]:
        """Incumbents checkpointed so far: ``{"incumbents": [...], "done": bool}``."""
        return self._ok("GET", f"/v1/jobs/{job_id}/stream")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._ok("DELETE", f"/v1/jobs/{job_id}")["job"]

    def wait(
        self, job_id: str, timeout: float = 120.0, interval: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job finishes; returns its result payload.

        Raises :class:`ServiceError` when the job failed or was cancelled,
        and :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = now() + timeout
        while True:
            status, payload = self._call("GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                return payload["result"]
            if status in (500, 410):
                raise ServiceError(status, payload)
            if status not in (409,):
                raise ServiceError(status, payload)
            if now() >= deadline:
                raise TimeoutError(f"job {job_id} did not finish within {timeout}s")
            time.sleep(interval)

    def run(
        self,
        request: "SolveRequest | dict[str, Any]",
        tenant: str | None = None,
        lane: str | None = None,
        timeout: float = 120.0,
    ) -> dict[str, Any]:
        """Submit and wait — the one-call convenience path."""
        job = self.submit(request, tenant=tenant, lane=lane)["job"]
        return self.wait(job["id"], timeout=timeout)
