"""Load generator: concurrent clients against a running design service.

Drives N client threads, each submitting a round-robin slice of a request
mix and polling to completion, and reports client-observed latency
percentiles, throughput, and the server's dedupe-join rate. Used by the
service benchmark (``benchmarks/bench_service.py``) and as the CI smoke
(``python -m repro.service.loadgen --base-url ... --assert-dedupe``).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any

from repro.obs import now
from repro.service.client import ServiceClient

#: Default request mix: identical interactive designs (exercise dedupe +
#: cache) plus distinct small designs (exercise throughput).
DEFAULT_MIX: list[dict[str, Any]] = [
    {"kind": "design", "soc": "S1", "widths": [16, 16, 16]},
    {"kind": "design", "soc": "S1", "widths": [16, 16]},
    {"kind": "design", "soc": "S1", "widths": [32, 16]},
    {"kind": "design", "soc": "S1", "widths": [16, 16, 16]},
]


def _percentile(sorted_values: list[float], q: float) -> float | None:
    if not sorted_values:
        return None
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def run_load(
    base_url: str,
    payloads: list[dict[str, Any]] | None = None,
    clients: int = 4,
    requests_per_client: int = 4,
    tenant: str | None = None,
    timeout: float = 120.0,
) -> dict[str, Any]:
    """Run the load and return a JSON-ready stats payload.

    Latency is client-observed submit→result wall time (poll granularity
    included — this measures the service as a user sees it, not the bare
    solver). The dedupe join count is read from the server's metrics delta
    across the run.
    """
    payloads = payloads or DEFAULT_MIX
    client = ServiceClient(base_url, timeout=timeout)
    before = client.metrics()["dedupe"]
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()

    def _drive(worker: int) -> None:
        for i in range(requests_per_client):
            payload = payloads[(worker + i) % len(payloads)]
            begin = now()
            try:
                client.run(payload, tenant=tenant, timeout=timeout)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                with lock:
                    errors.append(f"{type(exc).__name__}: {exc}")
                continue
            elapsed = now() - begin
            with lock:
                latencies.append(elapsed)

    threads = [
        threading.Thread(target=_drive, args=(w,), name=f"loadgen-{w}")
        for w in range(clients)
    ]
    wall_start = now()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = now() - wall_start
    after = client.metrics()["dedupe"]
    ordered = sorted(latencies)
    completed = len(latencies)
    submitted = after["submitted"] - before["submitted"]
    joins = after["joins"] - before["joins"]
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "completed": completed,
        "errors": errors,
        "wall_time": wall,
        "throughput": completed / wall if wall > 0 else 0.0,
        "latency": {
            "p50": _percentile(ordered, 0.50),
            "p99": _percentile(ordered, 0.99),
            "min": ordered[0] if ordered else None,
            "max": ordered[-1] if ordered else None,
        },
        "dedupe": {
            "submitted": submitted,
            "joins": joins,
            "join_rate": (joins / submitted) if submitted else 0.0,
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-loadgen", description="load-generate a running design service"
    )
    parser.add_argument("--base-url", required=True, help="http://host:port of the service")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests-per-client", type=int, default=4)
    parser.add_argument("--tenant", default=None)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--assert-dedupe", action="store_true",
                        help="exit 1 unless at least one dedupe join happened")
    args = parser.parse_args(argv)
    stats = run_load(
        args.base_url,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        tenant=args.tenant,
        timeout=args.timeout,
    )
    print(json.dumps(stats, indent=2, sort_keys=True))
    if stats["errors"]:
        print(f"loadgen: {len(stats['errors'])} request(s) failed", file=sys.stderr)
        return 1
    if stats["completed"] == 0:
        print("loadgen: no request completed", file=sys.stderr)
        return 1
    if args.assert_dedupe and stats["dedupe"]["joins"] == 0:
        print("loadgen: expected at least one dedupe join", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
