"""Job records for the design service.

A :class:`Job` wraps one :class:`~repro.core.request.SolveRequest` with the
queue-side state the scheduler and the HTTP layer share: identity, lane,
tenant, lifecycle status, timestamps, and — once finished — either the
JSON result payload or the error text. Jobs are plain mutable records; all
mutation happens on the scheduler's event loop (or, for the terminal
transition, under the scheduler's completion callback), so the HTTP layer
only ever reads them.

Deduplication identity is ``(tenant, request.fingerprint())``: two tenants
submitting the same request are distinct jobs (their caches are namespaced
apart), while N submissions of one fingerprint by one tenant share a
single job and therefore a single solve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.core.request import SolveRequest
from repro.obs import now

#: Lifecycle states a job moves through (terminal: done / failed / cancelled).
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: Scheduler lanes. ``interactive`` is for single-instance solves a human
#: is waiting on; ``batch`` for sweep-shaped fan-out work. The scheduler
#: round-robins between them so a burst of batch jobs cannot starve
#: interactive latency.
LANES = ("interactive", "batch")

#: Default lane per request kind: single-solve kinds are interactive,
#: enumeration kinds are batch.
DEFAULT_LANES = {
    "design": "interactive",
    "min_width": "interactive",
    "sweep": "batch",
    "bus_count": "batch",
}

_ids = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_ids):06d}"


@dataclass
class Job:
    """One submitted solve with its queue-side lifecycle state."""

    request: SolveRequest
    lane: str
    tenant: str | None = None
    id: str = field(default_factory=_next_job_id)
    fingerprint: str = ""
    status: str = "queued"
    submitted_at: float = field(default_factory=now)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    #: Number of submissions folded into this job beyond the first.
    joined: int = 0
    #: Private incumbent-checkpoint directory (set when streaming is on).
    checkpoint_dir: str | None = None
    #: Set when a cancel arrived while the solve was already running; the
    #: computation cannot be interrupted, but its result is discarded.
    cancel_requested: bool = False
    #: Per-job phase timings from the job-local trace span (filled on finish).
    trace: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.lane not in LANES:
            raise ValueError(f"unknown lane {self.lane!r}; expected one of {list(LANES)}")
        if not self.fingerprint:
            self.fingerprint = self.request.fingerprint()

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    @property
    def wait_time(self) -> float | None:
        """Seconds spent queued before a worker picked the job up."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def dedupe_key(self) -> tuple[str | None, str]:
        return (self.tenant, self.fingerprint)

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready status view (the result travels separately)."""
        payload: dict[str, Any] = {
            "id": self.id,
            "kind": self.request.kind,
            "lane": self.lane,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "joined": self.joined,
        }
        if self.wait_time is not None:
            payload["wait_time"] = self.wait_time
        if self.started_at is not None and self.finished_at is not None:
            payload["run_time"] = self.finished_at - self.started_at
        if self.error is not None:
            payload["error"] = self.error
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload
