"""Stdlib-only HTTP/JSON front-end over the job scheduler.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, one request per connection — exposing the service API:

==========  =============================  =======================================
method      path                           meaning
==========  =============================  =======================================
GET         ``/v1/health``                 liveness probe
GET         ``/v1/metrics``                scheduler + solver metrics snapshot
POST        ``/v1/jobs``                   submit ``{"request": {...}, "tenant"?,
                                           "lane"?}``; 202 with the job record,
                                           ``deduped`` true when attached to an
                                           in-flight identical job
GET         ``/v1/jobs/<id>``              job status
GET         ``/v1/jobs/<id>/result``       result payload (409 until finished)
GET         ``/v1/jobs/<id>/stream``       incumbents checkpointed so far
DELETE      ``/v1/jobs/<id>``              cancel
==========  =============================  =======================================

The request body of a submit is the wire form of
:meth:`repro.core.request.SolveRequest.as_payload`; malformed requests are
rejected with 400 before anything is enqueued.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.core.request import SolveRequest
from repro.service.jobs import LANES
from repro.service.scheduler import JobScheduler
from repro.util.errors import ReproError

_MAX_BODY = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class DesignServer:
    """The service: a scheduler plus its HTTP listener."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        cache_dir: str | None = None,
        state_dir: str | None = None,
    ):
        self.host = host
        self.port = port
        self.scheduler = JobScheduler(
            workers=workers, cache_dir=cache_dir, state_dir=state_dir
        )
        self._server: asyncio.AbstractServer | None = None

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> int:
        """Bind, start workers, and return the actual port (for port 0)."""
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------- wire
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
        except _HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 - never kill the acceptor
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {request_line!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        if length:
            body = await reader.readexactly(length)
        return await self._route(method.upper(), path.split("?", 1)[0], body)

    # ------------------------------------------------------------------ routes
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        segments = [s for s in path.split("/") if s]
        if segments[:1] != ["v1"]:
            raise _HttpError(404, f"no such path: {path}")
        rest = segments[1:]
        if rest == ["health"]:
            self._expect(method, "GET")
            return 200, {"ok": True}
        if rest == ["metrics"]:
            self._expect(method, "GET")
            return 200, self.scheduler.stats()
        if rest == ["jobs"]:
            self._expect(method, "POST")
            return await self._submit(body)
        if len(rest) in (2, 3) and rest[0] == "jobs":
            job = self.scheduler.get(rest[1])
            if job is None:
                raise _HttpError(404, f"no such job: {rest[1]}")
            if len(rest) == 2:
                if method == "DELETE":
                    job = await self.scheduler.cancel(job.id)
                    return 200, {"job": job.as_payload()}
                self._expect(method, "GET")
                return 200, {"job": job.as_payload()}
            self._expect(method, "GET")
            if rest[2] == "result":
                return self._result(job)
            if rest[2] == "stream":
                return 200, {
                    "job": job.as_payload(),
                    "incumbents": self.scheduler.incumbents(job),
                    "done": job.finished,
                }
        raise _HttpError(404, f"no such path: {path}")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise _HttpError(405, f"use {allowed} on this path")

    async def _submit(self, body: bytes) -> tuple[int, dict[str, Any]]:
        try:
            payload = json.loads(body or b"{}")
        except ValueError as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict) or "request" not in payload:
            raise _HttpError(400, 'body must be {"request": {...}}')
        lane = payload.get("lane")
        if lane is not None and lane not in LANES:
            raise _HttpError(400, f"unknown lane {lane!r}; expected one of {list(LANES)}")
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _HttpError(400, "tenant must be a string")
        try:
            request = SolveRequest.from_payload(payload["request"])
        except (ReproError, ValueError, TypeError) as exc:
            raise _HttpError(400, f"invalid request: {exc}") from exc
        try:
            job, deduped = await self.scheduler.submit(request, tenant=tenant, lane=lane)
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from exc
        return 202, {"job": job.as_payload(), "deduped": deduped}

    def _result(self, job) -> tuple[int, dict[str, Any]]:
        if job.status == "done":
            return 200, {"job": job.as_payload(), "result": job.result}
        if job.status == "failed":
            return 500, {"job": job.as_payload(), "error": job.error}
        if job.status == "cancelled":
            return 410, {"job": job.as_payload(), "error": "job was cancelled"}
        return 409, {"job": job.as_payload(), "error": "job not finished"}


def serve(
    host: str = "127.0.0.1",
    port: int = 8383,
    workers: int = 2,
    cache_dir: str | None = None,
    state_dir: str | None = None,
    port_file: str | None = None,
) -> int:
    """Blocking entry point behind ``repro serve``.

    With ``port=0`` an ephemeral port is chosen; the bound address is
    printed (and written to ``port_file`` when given) so scripts can find
    it. Runs until interrupted.
    """
    import tempfile

    async def _main() -> None:
        state = state_dir or tempfile.mkdtemp(prefix="repro-service-")
        server = DesignServer(
            host=host, port=port, workers=workers, cache_dir=cache_dir, state_dir=state
        )
        bound = await server.start()
        print(f"repro service listening on http://{host}:{bound}", flush=True)
        if port_file:
            with open(port_file, "w", encoding="utf-8") as fh:
                fh.write(str(bound))
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
