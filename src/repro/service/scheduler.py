"""Async job scheduler: fair-share lanes, dedupe, tenant caches.

The scheduler owns everything between "a request arrived" and "its result
payload exists":

- **two fair-share lanes** — ``interactive`` and ``batch`` are served
  round-robin: after dispatching from one lane the next dispatch prefers
  the other, so a burst of batch sweeps cannot starve a human waiting on a
  single design (and vice versa). Within a lane, FIFO.
- **fingerprint dedupe** — an in-flight (queued or running) job per
  ``(tenant, fingerprint)``: further submissions of the same request join
  the existing job and receive the same result. N concurrent clients
  asking for one solve cost exactly one B&B run.
- **tenant cache namespaces** — each tenant's solves go through a
  :class:`~repro.runtime.cache.SolutionCache` namespaced to the tenant
  over one shared store root, so records never alias across tenants and a
  tenant purge touches only its own records.
- **incumbent streaming** — jobs whose request carries a
  :class:`~repro.obs.SolvePolicy` get a private checkpoint directory; the
  B&B solver persists improving incumbents there
  (:class:`~repro.obs.CheckpointStore`), and the HTTP layer reads them
  back while the job is still running.
- **observability** — ``service.*`` metrics (submissions, dedupe joins,
  queue depth per lane, lane wait, run time) on the process registry, and
  a per-job tracer whose phase totals land on the job record.

Solves run on a thread pool (``workers`` threads). The active solve cache
is a context variable, so each worker thread installs its tenant's cache
without affecting the others.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from pathlib import Path
from typing import Any

from repro.core.request import SolveRequest
from repro.obs import Tracer, get_metrics, now
from repro.runtime import SolutionCache, use_cache
from repro.service.jobs import DEFAULT_LANES, LANES, Job

#: Tenant key for requests submitted without a tenant.
_PUBLIC = None


class JobScheduler:
    """Owns the job table, the two lanes, and the solver thread pool."""

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str | None = None,
        state_dir: str | None = None,
        cache_maxsize: int = 1024,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers
        self.cache_dir = cache_dir
        self.state_dir = Path(state_dir) if state_dir else None
        self.cache_maxsize = cache_maxsize
        self._jobs: dict[str, Job] = {}
        self._active: dict[tuple[str | None, str], Job] = {}
        self._lanes: dict[str, deque[Job]] = {lane: deque() for lane in LANES}
        self._not_empty = asyncio.Condition()
        self._turn = "interactive"
        self._caches: dict[str | None, SolutionCache] = {}
        self._cache_lock = threading.Lock()
        self._tasks: list[asyncio.Task] = []
        self._pool = None
        self._closed = False

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-service"
        )
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"service-worker-{i}")
            for i in range(self.workers)
        ]

    async def close(self) -> None:
        self._closed = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------ submit
    async def submit(
        self,
        request: SolveRequest,
        tenant: str | None = None,
        lane: str | None = None,
    ) -> tuple[Job, bool]:
        """Enqueue ``request`` (or join the in-flight identical job).

        Returns ``(job, deduped)``; ``deduped`` is True when the submission
        attached to an existing queued/running job instead of creating one.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        metrics = get_metrics()
        metrics.counter("service.submitted").inc()
        key = (tenant, request.fingerprint())
        existing = self._active.get(key)
        if existing is not None and not existing.finished:
            existing.joined += 1
            metrics.counter("service.dedupe_joins").inc()
            return existing, True
        if lane is None:
            lane = DEFAULT_LANES[request.kind]
        job = Job(request=request, lane=lane, tenant=tenant, fingerprint=key[1])
        self._jobs[job.id] = job
        self._active[key] = job
        async with self._not_empty:
            self._lanes[lane].append(job)
            self._not_empty.notify()
        self._gauge_depths()
        return job, False

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    async def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: dequeue it if still queued, else discard its result.

        Either way the dedupe entry is dropped immediately, so a fresh
        submission of the same fingerprint starts a new solve rather than
        attaching to a cancelled one.
        """
        job = self._jobs.get(job_id)
        if job is None or job.finished:
            return job
        self._active.pop(job.dedupe_key(), None)
        if job.status == "queued":
            async with self._not_empty:
                try:
                    self._lanes[job.lane].remove(job)
                except ValueError:
                    pass
            job.status = "cancelled"
            job.finished_at = now()
            self._gauge_depths()
        else:
            job.cancel_requested = True
        get_metrics().counter("service.cancelled").inc()
        return job

    # ------------------------------------------------------------------ workers
    async def _next_job(self) -> Job:
        async with self._not_empty:
            while not any(self._lanes.values()):
                await self._not_empty.wait()
            order = [self._turn] + [lane for lane in LANES if lane != self._turn]
            for lane in order:
                if self._lanes[lane]:
                    job = self._lanes[lane].popleft()
                    break
            # Fair share: the next dispatch prefers the other lane.
            self._turn = next(l for l in LANES if l != lane)
        self._gauge_depths()
        return job

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        metrics = get_metrics()
        while True:
            job = await self._next_job()
            if job.status != "queued":  # cancelled while waiting for a worker
                continue
            job.status = "running"
            job.started_at = now()
            metrics.histogram(f"service.lane_wait.{job.lane}").observe(job.wait_time)
            try:
                payload = await loop.run_in_executor(self._pool, self._run_job, job)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 - job errors become payloads
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = "failed"
                metrics.counter("service.failed").inc()
            else:
                if job.cancel_requested:
                    job.status = "cancelled"
                else:
                    job.result = payload
                    job.status = "done"
                    metrics.counter("service.completed").inc()
            job.finished_at = now()
            metrics.histogram("service.run_time").observe(
                job.finished_at - job.started_at
            )
            # Drop the dedupe entry only if it still points at this job (a
            # cancel may already have replaced it with a fresh submission).
            if self._active.get(job.dedupe_key()) is job:
                self._active.pop(job.dedupe_key(), None)

    # ------------------------------------------------------------ thread side
    def _tenant_cache(self, tenant: str | None) -> SolutionCache:
        with self._cache_lock:
            cache = self._caches.get(tenant)
            if cache is None:
                cache = SolutionCache(
                    maxsize=self.cache_maxsize,
                    directory=self.cache_dir,
                    namespace=tenant,
                )
                self._caches[tenant] = cache
            return cache

    def _effective_request(self, job: Job) -> SolveRequest:
        """The request actually executed: checkpointing rides on the policy.

        Jobs carrying a :class:`SolvePolicy` get a private checkpoint
        directory under the state root so their incumbents stream; the
        override never enters the fingerprint (``checkpoint_dir`` is
        excluded from the policy's cache token), so dedupe is unaffected.
        """
        request = job.request
        if self.state_dir is None or request.policy is None:
            return request
        job_dir = self.state_dir / "jobs" / job.id
        job_dir.mkdir(parents=True, exist_ok=True)
        job.checkpoint_dir = str(job_dir)
        policy = request.policy.with_overrides(checkpoint_dir=str(job_dir))
        return request.with_overrides(policy=policy)

    def _run_job(self, job: Job) -> dict[str, Any]:
        """Executed on a worker thread: tenant cache + traced solve."""
        cache = self._tenant_cache(job.tenant)
        request = self._effective_request(job)
        tracer = Tracer()
        with use_cache(cache):
            with tracer.span("service.job", job=job.id, kind=request.kind):
                payload = request.run_payload()
        job.trace = {"phases": tracer.phase_totals()}
        return payload

    # --------------------------------------------------------------- inspection
    def incumbents(self, job: Job) -> list[dict[str, Any]]:
        """Incumbents checkpointed so far by ``job``'s solve, best first.

        Empty for jobs without a policy (nothing streams) and before the
        first incumbent lands. Objectives are in the model's sense.
        """
        if job.checkpoint_dir is None:
            return []
        import json

        entries = []
        for path in sorted(Path(job.checkpoint_dir).glob("incumbent-*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or "objective" not in payload:
                continue
            entries.append(
                {
                    "model_fingerprint": path.stem.removeprefix("incumbent-"),
                    "objective": payload["objective"],
                }
            )
        return sorted(entries, key=lambda e: e["objective"])

    def _gauge_depths(self) -> None:
        metrics = get_metrics()
        for lane, queue in self._lanes.items():
            metrics.gauge(f"service.queue_depth.{lane}").set(len(queue))

    def stats(self) -> dict[str, Any]:
        """JSON-ready service statistics for the metrics endpoint."""
        metrics = get_metrics()
        submitted = metrics.counter("service.submitted").value
        joins = metrics.counter("service.dedupe_joins").value
        return {
            "jobs": {
                "total": len(self._jobs),
                "by_status": {
                    status: sum(1 for j in self._jobs.values() if j.status == status)
                    for status in ("queued", "running", "done", "failed", "cancelled")
                },
            },
            "queues": {lane: len(q) for lane, q in self._lanes.items()},
            "dedupe": {
                "submitted": submitted,
                "joins": joins,
                "join_rate": (joins / submitted) if submitted else 0.0,
            },
            "caches": {
                (tenant or ""): cache.stats_summary()
                for tenant, cache in sorted(
                    self._caches.items(), key=lambda kv: kv[0] or ""
                )
            },
            "metrics": metrics.snapshot(),
        }
