"""Core-to-bus assignments and their evaluation.

An :class:`Assignment` binds an SOC to a :class:`TamArchitecture` through a
vector ``bus_of[i]`` giving each core's bus. Evaluation under a timing model
produces per-bus serial test times and the system makespan — the quantity
the paper minimizes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.tam.timing import TimingModel
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Assignment:
    """A complete core-to-bus mapping."""

    soc: Soc
    arch: TamArchitecture
    bus_of: tuple[int, ...]

    def __post_init__(self):
        if len(self.bus_of) != len(self.soc):
            raise ValidationError(
                f"assignment covers {len(self.bus_of)} cores but SOC "
                f"{self.soc.name!r} has {len(self.soc)}"
            )
        for i, bus in enumerate(self.bus_of):
            if not 0 <= bus < self.arch.num_buses:
                raise ValidationError(
                    f"core {self.soc.cores[i].name!r} assigned to bus {bus}, "
                    f"but architecture has buses 0..{self.arch.num_buses - 1}"
                )

    # ------------------------------------------------------------- structure
    def cores_on_bus(self, bus: int) -> list[int]:
        """Indices of the cores assigned to ``bus`` (in SOC order)."""
        return [i for i, b in enumerate(self.bus_of) if b == bus]

    def buses_used(self) -> list[int]:
        """Bus indices that carry at least one core."""
        return sorted(set(self.bus_of))

    def groups(self) -> dict[int, list[str]]:
        """Bus index -> core names, for human-readable reporting."""
        return {
            bus: [self.soc.cores[i].name for i in self.cores_on_bus(bus)]
            for bus in range(self.arch.num_buses)
        }

    def shares_bus(self, core_a: int, core_b: int) -> bool:
        return self.bus_of[core_a] == self.bus_of[core_b]

    # ------------------------------------------------------------- evaluation
    def bus_times(self, timing: TimingModel) -> list[float]:
        """Serial test time of each bus under ``timing`` (inf if incompatible)."""
        totals = [0.0] * self.arch.num_buses
        for i, core in enumerate(self.soc):
            bus = self.bus_of[i]
            totals[bus] += timing.time_on_bus(core, self.arch.width_of(bus))
        return totals

    def makespan(self, timing: TimingModel) -> float:
        """System testing time: the longest bus."""
        return max(self.bus_times(timing))

    def is_timing_feasible(self, timing: TimingModel) -> bool:
        """True if no core sits on a bus it cannot use."""
        return math.isfinite(self.makespan(timing))

    def describe(self, timing: TimingModel) -> str:
        """Multi-line report: per-bus core lists, times, and the makespan."""
        times = self.bus_times(timing)
        lines = [f"{self.soc.name} on {self.arch}:"]
        for bus in range(self.arch.num_buses):
            names = ", ".join(self.soc.cores[i].name for i in self.cores_on_bus(bus)) or "(empty)"
            time = "INFEASIBLE" if math.isinf(times[bus]) else f"{times[bus]:.0f}"
            lines.append(f"  bus {bus} (w={self.arch.width_of(bus)}): {names} -> {time} cycles")
        span = self.makespan(timing)
        span_text = "INFEASIBLE" if math.isinf(span) else f"{span:.0f}"
        lines.append(f"  makespan: {span_text} cycles")
        return "\n".join(lines)


def evaluate_makespan(
    times: np.ndarray, bus_of: Sequence[int], num_buses: int
) -> float:
    """Makespan from a precomputed ``t[i][j]`` matrix (hot path for search).

    ``times`` is the dense matrix from ``TimingModel.matrix``; infeasible
    core/bus pairs are inf and poison the makespan, which is the desired
    behaviour for search pruning.
    """
    totals = [0.0] * num_buses
    for i, bus in enumerate(bus_of):
        totals[bus] += times[i][bus]
    return max(totals)
