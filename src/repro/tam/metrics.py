"""Test resource metrics: data volume, ATE vector memory, TAM utilization.

The successor literature (tester-memory-constrained multisite testing)
evaluates TAM designs on more than the makespan; these metrics make the
same quantities available here:

- **test data volume** — bits that must cross the chip boundary for a
  core/SOC (stimulus in + response out per pattern);
- **ATE vector memory** — per TAM wire the tester stores one bit per cycle
  the wire's bus is active, so a bus of width ``w`` busy for ``t`` cycles
  costs ``w x t`` bits of channel memory;
- **TAM utilization** — fraction of the architecture's wire-cycles
  (``total_width x makespan``) actually carrying a core's test. Idle
  wire-cycles come from two sources this metric separates: buses finishing
  before the makespan (*schedule slack*) and cores narrower than their bus
  (*width slack*, fixed/serial models only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.tam.assignment import Assignment
from repro.tam.timing import FlexibleWidthTiming, TimingModel


def core_test_data_volume(core: Core) -> int:
    """Bits crossing the core's wrapper over its whole test.

    Per pattern: stimulus (inputs + scan load) in and response (outputs +
    scan unload) out.
    """
    return core.num_patterns * (core.scan_in_bits + core.scan_out_bits)


def soc_test_data_volume(soc: Soc) -> int:
    """Total test data volume of the system (bits)."""
    return sum(core_test_data_volume(core) for core in soc)


@dataclass(frozen=True)
class TamUtilization:
    """Wire-cycle accounting of one designed architecture."""

    total_wire_cycles: float  # total_width x makespan
    active_wire_cycles: float  # wire-cycles carrying test data
    schedule_slack: float  # idle because a bus finished early
    width_slack: float  # idle because a core is narrower than its bus

    @property
    def utilization(self) -> float:
        """Active fraction in [0, 1]."""
        if self.total_wire_cycles == 0:
            return 0.0
        return self.active_wire_cycles / self.total_wire_cycles

    def __str__(self) -> str:
        return (
            f"utilization {self.utilization:.1%} "
            f"(schedule slack {self.schedule_slack:.0f}, "
            f"width slack {self.width_slack:.0f} wire-cycles)"
        )


def _active_wires(core: Core, bus_width: int, timing: TimingModel) -> int:
    """Wires a core actually drives on its bus under the timing model."""
    if isinstance(timing, FlexibleWidthTiming):
        return bus_width  # wrapper redesigned for the full bus
    return min(core.test_width, bus_width)


def tam_utilization(
    soc: Soc, assignment: Assignment, timing: TimingModel
) -> TamUtilization:
    """Wire-cycle utilization of ``assignment`` under ``timing``."""
    arch = assignment.arch
    bus_times = assignment.bus_times(timing)
    makespan = max(bus_times)
    total = arch.total_width * makespan

    active = 0.0
    width_slack = 0.0
    for i, core in enumerate(soc):
        bus = assignment.bus_of[i]
        width = arch.width_of(bus)
        duration = timing.time_on_bus(core, width)
        wires = _active_wires(core, width, timing)
        active += wires * duration
        width_slack += (width - wires) * duration
    schedule_slack = sum(
        (makespan - bus_time) * arch.width_of(bus)
        for bus, bus_time in enumerate(bus_times)
    )
    return TamUtilization(
        total_wire_cycles=total,
        active_wire_cycles=active,
        schedule_slack=schedule_slack,
        width_slack=width_slack,
    )


def ate_vector_memory(assignment: Assignment, timing: TimingModel) -> float:
    """Tester channel memory (bits) to hold the architecture's vectors.

    Each TAM wire needs one stored bit per cycle its bus is active, so a
    bus costs ``width x bus_time`` regardless of the makespan (idle buses
    simply stop consuming vectors).
    """
    arch = assignment.arch
    return sum(
        arch.width_of(bus) * bus_time
        for bus, bus_time in enumerate(assignment.bus_times(timing))
    )
