"""Test access mechanism (TAM) architecture model.

The paper's architecture is a set of *test buses*: bus ``j`` has width
``w_j`` wires; cores assigned to the same bus are tested one after another,
buses operate in parallel, and the system test time is the longest bus.

- :class:`TamArchitecture` — the bus set and widths;
- :mod:`repro.tam.timing` — the three core-to-bus test-time models
  (fixed-width, serialization, flexible-wrapper);
- :class:`Assignment` — a core-to-bus mapping with evaluation;
- :mod:`repro.tam.exhaustive` — branch-and-prune exact search used as the
  oracle for the ILP solver on small systems.
"""

from repro.tam.architecture import TamArchitecture
from repro.tam.timing import (
    TimingModel,
    FixedWidthTiming,
    SerializationTiming,
    FlexibleWidthTiming,
    make_timing_model,
    INFEASIBLE_TIME,
)
from repro.tam.assignment import Assignment, evaluate_makespan
from repro.tam.exhaustive import exhaustive_optimal
from repro.tam.metrics import (
    core_test_data_volume,
    soc_test_data_volume,
    tam_utilization,
    ate_vector_memory,
    TamUtilization,
)
from repro.tam.alternatives import (
    multiplexed_time,
    daisychain_time,
    distribution_allocation,
    compare_architectures,
    DistributionResult,
    ArchitectureComparison,
)

__all__ = [
    "TamArchitecture",
    "TimingModel",
    "FixedWidthTiming",
    "SerializationTiming",
    "FlexibleWidthTiming",
    "make_timing_model",
    "INFEASIBLE_TIME",
    "Assignment",
    "evaluate_makespan",
    "exhaustive_optimal",
    "multiplexed_time",
    "daisychain_time",
    "distribution_allocation",
    "compare_architectures",
    "DistributionResult",
    "ArchitectureComparison",
    "core_test_data_volume",
    "soc_test_data_volume",
    "tam_utilization",
    "ate_vector_memory",
    "TamUtilization",
]
