"""Core-to-bus test time models ``t_ij``.

Three models, matching the paper and its immediate successors:

- :class:`FixedWidthTiming` — the paper's basic model. Core ``i`` was
  delivered with a test interface of width ``w_i``; it may only be assigned
  to a bus at least that wide, and its test time is the constant ``t_i``
  (extra bus wires buy nothing).
- :class:`SerializationTiming` — the paper's width-adaptation model. A core
  may sit on a narrower bus through serializing converters; its time
  stretches to ``t_i * ceil(w_i / w_j)``.
- :class:`FlexibleWidthTiming` — full wrapper redesign per bus width
  (``t_ij = T_i(w_j)`` from :mod:`repro.wrapper`); this is the model the
  post-2000 wrapper/TAM co-optimization line adopted and is included as the
  library's extension beyond the paper.

All models expose ``time_on_bus(core, bus_width)`` returning cycles, or
:data:`INFEASIBLE_TIME` when the core cannot use the bus, and
``matrix(soc, arch)`` producing the dense ``t[i][j]`` array the ILP consumes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.util.errors import ValidationError
from repro.wrapper import application_time as wrapper_test_time

#: Sentinel for "core cannot be assigned to this bus".
INFEASIBLE_TIME = math.inf

#: Shared structural-signature -> cycles cache. Wrapper design costs
#: O(width^2) packing passes; every timing model hits the same curve
#: repeatedly while the designer sweeps architectures. The key captures all
#: core fields the wrapper model reads, so same-named cores from different
#: generators can never collide.
_TIME_CACHE: dict[tuple, int] = {}


def _cached_wrapper_time(core: Core, width: int) -> int:
    key = (
        core.num_inputs,
        core.num_outputs,
        core.num_flipflops,
        core.num_patterns,
        core.scan_chains,
        width,
    )
    if key not in _TIME_CACHE:
        _TIME_CACHE[key] = wrapper_test_time(core, width)
    return _TIME_CACHE[key]


class TimingModel(ABC):
    """Strategy interface mapping (core, bus width) to test cycles."""

    #: short name used in experiment tables
    name: str = "abstract"

    @abstractmethod
    def base_time(self, core: Core) -> int:
        """Test time at the core's native interface width ``w_i``."""

    @abstractmethod
    def time_on_bus(self, core: Core, bus_width: int) -> float:
        """Cycles for ``core`` on a bus of ``bus_width`` wires (inf = forbidden)."""

    def matrix(self, soc: Soc, arch: TamArchitecture) -> np.ndarray:
        """Dense ``(num_cores, num_buses)`` array of ``t_ij`` values."""
        out = np.empty((len(soc), arch.num_buses))
        for i, core in enumerate(soc):
            for j, width in enumerate(arch.widths):
                out[i, j] = self.time_on_bus(core, width)
        return out

    def feasible(self, soc: Soc, arch: TamArchitecture) -> bool:
        """True if every core has at least one usable bus."""
        t = self.matrix(soc, arch)
        return bool(np.all(np.isfinite(t).any(axis=1)))

    def max_useful_bus_width(self, soc: Soc) -> int:
        """Widest bus worth building: no core gets faster beyond this.

        For the paper's fixed and serialization models a bus wider than the
        widest core interface is pure waste; the flexible model overrides
        this with the wrapper Pareto knee.
        """
        return max(core.test_width for core in soc.cores)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FixedWidthTiming(TimingModel):
    """Paper model I: rigid interfaces, no serialization."""

    name = "fixed"

    def base_time(self, core: Core) -> int:
        return _cached_wrapper_time(core, core.test_width)

    def time_on_bus(self, core: Core, bus_width: int) -> float:
        if bus_width <= 0:
            raise ValidationError(f"bus width must be positive, got {bus_width}")
        if bus_width < core.test_width:
            return INFEASIBLE_TIME
        return float(self.base_time(core))


class SerializationTiming(TimingModel):
    """Paper model II: narrower buses allowed via serialization.

    A core of interface width ``w_i`` on a bus of width ``w_j < w_i`` is fed
    through width converters; each pattern's data is time-multiplexed over
    ``ceil(w_i / w_j)`` bus cycles, stretching the test proportionally.
    Buses wider than the interface still give no speedup.
    """

    name = "serial"

    def base_time(self, core: Core) -> int:
        return _cached_wrapper_time(core, core.test_width)

    def time_on_bus(self, core: Core, bus_width: int) -> float:
        if bus_width <= 0:
            raise ValidationError(f"bus width must be positive, got {bus_width}")
        stretch = math.ceil(core.test_width / bus_width) if bus_width < core.test_width else 1
        return float(self.base_time(core) * stretch)


class FlexibleWidthTiming(TimingModel):
    """Extension model: the wrapper is redesigned for the bus width.

    ``t_ij = T_i(w_j)`` from the wrapper substrate — times now genuinely
    improve on wider buses until the core's Pareto knee.
    """

    name = "flexible"

    def base_time(self, core: Core) -> int:
        return _cached_wrapper_time(core, core.test_width)

    def time_on_bus(self, core: Core, bus_width: int) -> float:
        if bus_width <= 0:
            raise ValidationError(f"bus width must be positive, got {bus_width}")
        return float(_cached_wrapper_time(core, bus_width))

    def max_useful_bus_width(self, soc: Soc, search_limit: int = 64) -> int:
        """Largest wrapper Pareto knee across the SOC's cores."""
        from repro.wrapper import pareto_widths

        return max(pareto_widths(core, search_limit)[-1] for core in soc.cores)


_MODELS = {
    "fixed": FixedWidthTiming,
    "serial": SerializationTiming,
    "flexible": FlexibleWidthTiming,
}


def make_timing_model(name: str) -> TimingModel:
    """Instantiate a timing model by its short name (fixed/serial/flexible)."""
    try:
        return _MODELS[name]()
    except KeyError:
        raise ValidationError(
            f"unknown timing model {name!r}; expected one of {sorted(_MODELS)}"
        ) from None
