"""Test bus architecture: the widths of the buses."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.util.combinatorics import compositions, partitions
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class TamArchitecture:
    """An ordered tuple of test bus widths.

    Buses are identified by their index ``0..num_buses-1``. Order matters
    for reproducibility of assignments, but two architectures whose width
    multisets match are test-time-equivalent; :meth:`canonical` gives the
    sorted representative for deduplication.
    """

    widths: tuple[int, ...]

    def __init__(self, widths: Sequence[int]):
        widths = tuple(int(w) for w in widths)
        if not widths:
            raise ValidationError("a TAM needs at least one test bus")
        if any(w <= 0 for w in widths):
            raise ValidationError(f"bus widths must be positive, got {widths}")
        object.__setattr__(self, "widths", widths)

    @property
    def num_buses(self) -> int:
        return len(self.widths)

    @property
    def total_width(self) -> int:
        """Total TAM wires — the chip-pin cost the paper budgets."""
        return sum(self.widths)

    def width_of(self, bus: int) -> int:
        if not 0 <= bus < self.num_buses:
            raise ValidationError(f"bus index {bus} out of range [0, {self.num_buses})")
        return self.widths[bus]

    def canonical(self) -> TamArchitecture:
        """Width-sorted (descending) representative of this architecture."""
        return TamArchitecture(tuple(sorted(self.widths, reverse=True)))

    def __iter__(self):
        return iter(self.widths)

    def __len__(self) -> int:
        return self.num_buses

    def __str__(self) -> str:
        return "TAM[" + "+".join(str(w) for w in self.widths) + "]"

    # ------------------------------------------------------------ factories
    @staticmethod
    def even_split(total_width: int, num_buses: int) -> TamArchitecture:
        """Split ``total_width`` wires as evenly as possible over the buses."""
        if num_buses <= 0:
            raise ValidationError(f"num_buses must be positive, got {num_buses}")
        if total_width < num_buses:
            raise ValidationError(
                f"cannot give {num_buses} buses at least one wire each from {total_width}"
            )
        base, extra = divmod(total_width, num_buses)
        return TamArchitecture([base + 1] * extra + [base] * (num_buses - extra))

    @staticmethod
    def enumerate_distributions(
        total_width: int,
        num_buses: int,
        distinct_buses: bool = False,
        max_bus_width: int | None = None,
    ) -> Iterable[TamArchitecture]:
        """Yield every width distribution of ``total_width`` over ``num_buses``.

        With ``distinct_buses=False`` (default) symmetric permutations are
        deduplicated via integer partitions — the form the designer sweeps.
        ``max_bus_width`` clamps individual bus widths; timing models expose
        the width beyond which no core improves, so wider buses would only
        waste wires.
        """
        if distinct_buses:
            for widths in compositions(total_width, num_buses):
                if max_bus_width is None or max(widths) <= max_bus_width:
                    yield TamArchitecture(widths)
        else:
            for widths in partitions(total_width, num_buses, max_part=max_bus_width):
                if len(widths) == num_buses:
                    yield TamArchitecture(widths)
