"""Exhaustive (branch-and-prune) optimal assignment for small systems.

Independent oracle for the ILP path: enumerates core-to-bus assignments with
makespan pruning and optional conflict constraints. Exponential in the core
count — use only on systems of roughly a dozen cores (exactly the regime the
paper's examples live in).
"""

from __future__ import annotations

import math
from collections.abc import Collection
from dataclasses import dataclass

import numpy as np

from repro.soc.system import Soc
from repro.tam.architecture import TamArchitecture
from repro.tam.assignment import Assignment
from repro.tam.timing import TimingModel
from repro.util.errors import InfeasibleError


@dataclass
class ExhaustiveResult:
    """Best assignment found plus search work counters."""

    assignment: Assignment
    makespan: float
    nodes_explored: int


def exhaustive_optimal(
    soc: Soc,
    arch: TamArchitecture,
    timing: TimingModel,
    forbidden_pairs: Collection[tuple[int, int]] = (),
    forced_pairs: Collection[tuple[int, int]] = (),
    max_cores: int = 16,
) -> ExhaustiveResult:
    """Find the makespan-optimal assignment by pruned enumeration.

    Parameters mirror the constrained design problem: ``forbidden_pairs``
    are core index pairs that may **not** share a bus (place-and-route);
    ``forced_pairs`` **must** share one (power serialization). Cores are
    explored largest-first, and a branch is cut as soon as its partial
    makespan reaches the incumbent. Symmetry between equal-width empty buses
    is broken by only opening the first such bus.

    Raises :class:`InfeasibleError` when no assignment satisfies all
    constraints (e.g. contradictory pair constraints, or a fixed-width core
    with no wide-enough bus).
    """
    n = len(soc)
    if n > max_cores:
        raise InfeasibleError(
            f"exhaustive search limited to {max_cores} cores; {soc.name} has {n}",
            reason="instance too large",
        )
    times = timing.matrix(soc, arch)
    num_buses = arch.num_buses

    forbid: list[set[int]] = [set() for _ in range(n)]
    for a, b in forbidden_pairs:
        forbid[a].add(b)
        forbid[b].add(a)
    force: list[set[int]] = [set() for _ in range(n)]
    for a, b in forced_pairs:
        force[a].add(b)
        force[b].add(a)

    # Largest-first order makes pruning bite early.
    def _best_time(i: int) -> float:
        row = times[i]
        finite = row[np.isfinite(row)]
        return float(finite.min()) if finite.size else 0.0

    order = sorted(range(n), key=lambda i: -_best_time(i))

    best_span = math.inf
    best_vector: list[int] | None = None
    bus_load = [0.0] * num_buses
    assigned: dict[int, int] = {}
    nodes = 0

    def candidate_buses(core: int) -> list[int]:
        """Buses this core may take given pair constraints and symmetry."""
        forced_buses = {assigned[p] for p in force[core] if p in assigned}
        if len(forced_buses) > 1:
            return []  # already-placed partners disagree; dead branch
        if forced_buses:
            buses = [forced_buses.pop()]
        else:
            buses = list(range(num_buses))
        blocked = {assigned[p] for p in forbid[core] if p in assigned}
        result = []
        seen_empty_widths: set[int] = set()
        for bus in buses:
            if bus in blocked or not math.isfinite(times[core][bus]):
                continue
            width = arch.width_of(bus)
            if bus_load[bus] == 0.0 and not any(b == bus for b in assigned.values()):
                # Empty bus: identical-width empty buses are interchangeable.
                if width in seen_empty_widths:
                    continue
                seen_empty_widths.add(width)
            result.append(bus)
        return result

    def search(pos: int) -> None:
        nonlocal best_span, best_vector, nodes
        if pos == n:
            span = max(bus_load)
            if span < best_span:
                best_span = span
                best_vector = [assigned[i] for i in range(n)]
            return
        core = order[pos]
        for bus in candidate_buses(core):
            new_load = bus_load[bus] + times[core][bus]
            if new_load >= best_span:
                continue
            bus_load[bus] = new_load
            assigned[core] = bus
            nodes += 1
            search(pos + 1)
            del assigned[core]
            bus_load[bus] = new_load - times[core][bus]

    search(0)
    if best_vector is None:
        raise InfeasibleError(
            f"no feasible assignment for {soc.name} on {arch}",
            reason="constraints exclude every assignment",
        )
    assignment = Assignment(soc, arch, tuple(best_vector))
    return ExhaustiveResult(assignment, best_span, nodes)
