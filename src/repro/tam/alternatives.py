"""Alternative test access architectures.

The paper's *test bus* architecture is one of several access styles the
core-test literature (Aerts & Marinissen, ITC'98) compares. This module
implements the other three over the same wrapper substrate so the library
can reproduce that comparison (extension experiment E4):

- **multiplexed** — all ``W`` TAM wires connect to every core through a
  multiplexer; cores are tested one at a time at full width:
  ``T = sum_i T_i(W)``;
- **daisy-chain** — every core sits on one W-wide chain threading the whole
  SOC; with bypass registers, each pattern's shift depth is the *active*
  core's depth plus one bypass bit per other core. We use the standard
  approximation ``T = sum_i T_i(W) + (NC - 1) * p_total_extra`` reduced to
  per-pattern bypass overhead;
- **distribution** — the ``W`` wires are *partitioned* over the cores, one
  private slice each, and all cores test in parallel:
  ``T = max_i T_i(w_i)`` minimized over the partition.

Distribution-width allocation is solved *exactly*: the optimal target time
is one of the O(NC x W) distinct curve values, and feasibility of a target
``T`` is checkable in linear time (give each core the narrowest width
meeting ``T``); binary search over the candidate set yields the optimum.

All formulas use the flexible wrapper model (``T_i(w)`` from
:mod:`repro.wrapper`) — the alternatives redesign each core's wrapper for
the width it actually receives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.core import Core
from repro.soc.system import Soc
from repro.util.errors import InfeasibleError, ValidationError
from repro.wrapper import application_time


def _curve(core: Core, max_width: int) -> list[int]:
    return [application_time(core, w) for w in range(1, max_width + 1)]


def multiplexed_time(soc: Soc, total_width: int) -> int:
    """Testing time of the multiplexed architecture at ``total_width`` wires."""
    if total_width <= 0:
        raise ValidationError(f"total_width must be positive, got {total_width}")
    return sum(application_time(core, total_width) for core in soc)


def daisychain_time(soc: Soc, total_width: int) -> int:
    """Testing time of the daisy-chain (bypass) architecture.

    Every pattern of core *i* shifts through its own wrapper depth plus one
    bypass flip-flop for each of the other ``NC - 1`` cores on the chain, so
    each core's test pays ``(NC - 1)`` extra cycles per pattern on top of
    its full-width time.
    """
    if total_width <= 0:
        raise ValidationError(f"total_width must be positive, got {total_width}")
    bypass = len(soc) - 1
    return sum(
        application_time(core, total_width) + bypass * core.num_patterns for core in soc
    )


@dataclass(frozen=True)
class DistributionResult:
    """Optimal private-slice allocation for the distribution architecture."""

    widths: tuple[int, ...]  # per core, in SOC order
    makespan: int

    @property
    def total_width(self) -> int:
        return sum(self.widths)


def distribution_allocation(soc: Soc, total_width: int) -> DistributionResult:
    """Exact optimal width partition for the distribution architecture.

    Raises :class:`InfeasibleError` when ``total_width < NC`` (every core
    needs at least one private wire).
    """
    num_cores = len(soc)
    if total_width < num_cores:
        raise InfeasibleError(
            f"distribution needs >= 1 wire per core: W={total_width} < NC={num_cores}",
            reason="width below core count",
        )
    max_slice = total_width - (num_cores - 1)
    curves = [_curve(core, max_slice) for core in soc]

    def wires_needed(target: int) -> list[int] | None:
        """Narrowest per-core widths meeting ``target``, or None."""
        widths = []
        for curve in curves:
            # curve is non-increasing; find the first width with T <= target.
            # bisect on the reversed curve: positions of values <= target.
            lo, hi = 0, len(curve)
            while lo < hi:
                mid = (lo + hi) // 2
                if curve[mid] <= target:
                    hi = mid
                else:
                    lo = mid + 1
            if lo == len(curve):
                return None
            widths.append(lo + 1)
        return widths if sum(widths) <= total_width else None

    candidates = sorted({t for curve in curves for t in curve})
    lo, hi = 0, len(candidates) - 1
    best: list[int] | None = wires_needed(candidates[-1])
    if best is None:
        raise InfeasibleError(
            f"no distribution of {total_width} wires achieves any finite time",
            reason="curves do not fit",
        )
    best_target = candidates[-1]
    while lo <= hi:
        mid = (lo + hi) // 2
        target = candidates[mid]
        widths = wires_needed(target)
        if widths is not None:
            best = widths
            best_target = target
            hi = mid - 1
        else:
            lo = mid + 1

    # Hand out leftover wires to the bottleneck cores (free improvements).
    leftovers = total_width - sum(best)
    widths = list(best)
    while leftovers > 0:
        times = [curves[i][min(widths[i], len(curves[i])) - 1] for i in range(num_cores)]
        bottleneck = max(range(num_cores), key=lambda i: times[i])
        if widths[bottleneck] >= max_slice:
            break
        widths[bottleneck] += 1
        leftovers -= 1
    makespan = max(
        curves[i][min(widths[i], len(curves[i])) - 1] for i in range(num_cores)
    )
    assert makespan <= best_target
    return DistributionResult(tuple(widths), int(makespan))


@dataclass(frozen=True)
class ArchitectureComparison:
    """Testing times of all four access styles at one pin budget."""

    total_width: int
    multiplexed: int
    daisychain: int
    distribution: int | None  # None when W < NC
    test_bus: float

    def best_style(self) -> str:
        entries = {
            "multiplexed": self.multiplexed,
            "daisychain": self.daisychain,
            "test_bus": self.test_bus,
        }
        if self.distribution is not None:
            entries["distribution"] = self.distribution
        return min(entries, key=lambda k: entries[k])


def compare_architectures(
    soc: Soc,
    total_width: int,
    num_buses: int = 3,
    backend: str = "scipy",
) -> ArchitectureComparison:
    """Testing time of every architecture style at the same pin budget.

    The test-bus entry is the paper's exact optimum (best width
    distribution over ``num_buses`` buses, flexible timing, so all four
    styles share the same wrapper model).
    """
    from repro.core.designer import design_best_architecture

    try:
        distribution = distribution_allocation(soc, total_width).makespan
    except InfeasibleError:
        distribution = None
    sweep = design_best_architecture(
        soc,
        total_width,
        min(num_buses, total_width),
        timing="flexible",
        backend=backend,
        clamp_useless_width=True,
    )
    if sweep.best is None:
        raise InfeasibleError(
            f"no feasible test-bus architecture at W={total_width}",
            reason="test bus sweep empty",
        )
    return ArchitectureComparison(
        total_width=total_width,
        multiplexed=multiplexed_time(soc, total_width),
        daisychain=daisychain_time(soc, total_width),
        distribution=distribution,
        test_bus=sweep.best.makespan,
    )
